// Package analysistest runs a wrhtlint analyzer over a fixture tree and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library only.
//
// Fixtures live under <testdata>/src/<import/path>/*.go. A want comment
// names one or more quoted regular expressions that must each match exactly
// one diagnostic reported on that line:
//
//	for k := range m { // want `map iteration order`
//
// Every diagnostic must be wanted and every want must be matched; any
// mismatch fails the test with a per-line report.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"wrht/internal/analysis"
)

// Run applies analyzer a to the fixture packages under testdata/src named by
// paths and asserts the diagnostics equal the // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	diags, pkgs, fset, err := analysis.RunTree(root, []*analysis.Analyzer{a}, paths)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", paths, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, perr := parseWant(c.Text)
					if perr != nil {
						pos := fset.Position(c.Pos())
						t.Fatalf("%s: %v", pos, perr)
					}
					if len(patterns) == 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{file: pos.Filename, line: pos.Line}
					wants[k] = append(wants[k], patterns...)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		idx := -1
		for i, rx := range wants[k] {
			if rx != nil && rx.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
			continue
		}
		wants[k][idx] = nil // consume
	}
	unmatched := make([]key, 0, len(wants))
	for k := range wants {
		unmatched = append(unmatched, k)
	}
	sort.Slice(unmatched, func(i, j int) bool {
		if unmatched[i].file != unmatched[j].file {
			return unmatched[i].file < unmatched[j].file
		}
		return unmatched[i].line < unmatched[j].line
	})
	for _, k := range unmatched {
		for _, rx := range wants[k] {
			if rx != nil {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, rx)
			}
		}
	}
}

// parseWant extracts the quoted regexps of a // want comment, returning nil
// when the comment is not a want annotation.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	body := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(body, "want ")
	if !ok {
		return nil, nil
	}
	var patterns []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var quoted string
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern in %q", comment)
			}
			quoted = rest[:end+1]
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern in %q", comment)
			}
			quoted = rest[:end+2]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("want pattern must be quoted in %q", comment)
		}
		unquoted, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", quoted, err)
		}
		rx, err := regexp.Compile(unquoted)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %s: %v", quoted, err)
		}
		patterns = append(patterns, rx)
	}
	return patterns, nil
}
