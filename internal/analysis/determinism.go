package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the repository's reproducibility contract: priced
// numbers, rendered tables, and exported traces must be bit-identical across
// runs and across worker parallelism. Inside the simulation/pricing/report
// surface it flags
//
//   - `range` over a map unless the iteration is provably order-insensitive
//     (pure commutative aggregation) or a sort call follows it in the same
//     function (the collect-then-sort idiom);
//   - time.Now / time.Since — simulated seconds come from the engine, never
//     the wall clock;
//   - the global math/rand source (rand.Intn, rand.Float64, ...) — every
//     stream must flow from an explicit rand.New(rand.NewSource(seed)) so
//     runs reproduce from flags alone;
//   - map-typed arguments to fmt/log printing — map formatting is an
//     iteration-order trap the moment a key type without a total fmt order
//     (NaN floats, pointers) lands in a rendered table.
//
// The serving layer (internal/serve, cmd/serve, cmd/loadgen) is wall-clock
// territory and is allowlisted wholesale; single sites inside the scope
// suppress with //wrht:allow determinism -- <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-iteration order, wall clock, and global randomness in deterministic packages",
	Run:  runDeterminism,
}

// determinismAllowedPkgs are whole packages exempt from the determinism
// rules: the serving layer measures real latency and shedding on the wall
// clock by design (clock injection happens at internal/serve/degrade.go).
var determinismAllowedPkgs = map[string]bool{
	"wrht/internal/serve": true,
	"wrht/cmd/serve":      true,
	"wrht/cmd/loadgen":    true,
}

func determinismInScope(path string) bool {
	if determinismAllowedPkgs[path] {
		return false
	}
	return path == "wrht" ||
		strings.HasPrefix(path, "wrht/internal/") ||
		strings.HasPrefix(path, "wrht/cmd/") ||
		strings.HasPrefix(path, "wrht/examples/")
}

func runDeterminism(p *Pass) error {
	if !determinismInScope(p.PkgPath) {
		return nil
	}
	for _, f := range p.Files {
		// Call-site rules apply anywhere in the file, including package-level
		// variable initializers.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkDeterminismCall(p, call)
			return true
		})
		// The map-range rule needs the enclosing function to look for a
		// downstream sort.
		for _, fn := range enclosingFuncDecls(f) {
			checkMapRanges(p, fn)
		}
	}
	return nil
}

func checkDeterminismCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch pkg, name := fn.Pkg().Path(), fn.Name(); {
	case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
		p.Reportf(call.Pos(), "time.%s in a deterministic package: simulated time comes from the engine, not the wall clock", name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil &&
		!randConstructor(name):
		p.Reportf(call.Pos(), "global math/rand source (rand.%s): derive a stream from rand.New(rand.NewSource(seed)) so runs reproduce from flags alone", name)
	case (pkg == "fmt" || pkg == "log") && printerFunc(name):
		for _, arg := range call.Args {
			if tv, ok := p.TypesInfo.Types[arg]; ok && isMapType(tv.Type) {
				p.Reportf(arg.Pos(), "map formatted by %s.%s: render through sorted keys so output order is total", pkg, name)
			}
		}
	}
}

// randConstructor names the math/rand functions that build explicit seeded
// state rather than touching the global source.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

func printerFunc(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Sprint", "Sprintf", "Sprintln",
		"Fprint", "Fprintf", "Fprintln", "Errorf", "Fatal", "Fatalf", "Fatalln",
		"Panic", "Panicf", "Panicln", "Appendf", "Append", "Appendln":
		return true
	}
	return false
}

// checkMapRanges flags `range` statements over maps in fn unless the loop is
// order-insensitive or a sort call appears later in the same function (the
// collect-then-sort idiom: iteration order is erased before anything
// observable is produced).
func checkMapRanges(p *Pass, fn *ast.FuncDecl) {
	var ranges []*ast.RangeStmt
	var sortPositions []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := p.TypesInfo.Types[n.X]; ok && isMapType(tv.Type) {
				ranges = append(ranges, n)
			}
		case *ast.CallExpr:
			if isSortingCall(p.TypesInfo, n) {
				sortPositions = append(sortPositions, n.Pos())
			}
		}
		return true
	})
	for _, rng := range ranges {
		if orderInsensitiveBlock(p.TypesInfo, rng.Body, false) {
			continue
		}
		sorted := false
		for _, pos := range sortPositions {
			if pos > rng.Pos() {
				sorted = true
				break
			}
		}
		if sorted {
			continue
		}
		p.Reportf(rng.Pos(), "map iteration order can escape: sort the collected keys/values before use, or restructure the loop into pure commutative aggregation")
	}
}

// isSortingCall recognizes order-erasing calls: anything from package sort or
// slices (sort.Strings, slices.SortFunc, slices.Sorted over maps.Keys, ...)
// plus local helpers whose name mentions sorting.
func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "sort")
}

// orderInsensitiveBlock reports whether every statement in the block is pure
// commutative aggregation, so map iteration order cannot be observed:
// numeric/boolean += -= *= |= &= ^=, ++/--, writes into another map,
// delete(...), and if-guarded versions of the same (the min/max pattern).
// Anything else — append, calls, returns, branches, string building — is
// order-sensitive.
func orderInsensitiveBlock(info *types.Info, block *ast.BlockStmt, inBranch bool) bool {
	for _, stmt := range block.List {
		if !orderInsensitiveStmt(info, stmt, inBranch) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, stmt ast.Stmt, inBranch bool) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return orderInsensitiveAssign(info, s, inBranch)
	case *ast.IfStmt:
		if s.Init != nil || exprHasCall(info, s.Cond) {
			return false
		}
		if !orderInsensitiveBlock(info, s.Body, true) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveBlock(info, e, true)
		case *ast.IfStmt:
			return orderInsensitiveStmt(info, e, true)
		}
		return false
	case *ast.ExprStmt:
		// delete(m, k) is commutative across distinct keys.
		if call, ok := s.X.(*ast.CallExpr); ok && builtinName(info, call) == "delete" {
			return true
		}
		return false
	}
	return false
}

func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt, inBranch bool) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative only for numbers and booleans; string += builds
		// order-dependent output.
		for _, lhs := range s.Lhs {
			if tv, ok := info.Types[lhs]; ok {
				if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Info()&types.IsString != 0 {
					return false
				}
			}
		}
		for _, rhs := range s.Rhs {
			if exprHasCall(info, rhs) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		for _, rhs := range s.Rhs {
			if exprHasCall(info, rhs) {
				return false
			}
		}
		for _, lhs := range s.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				// m2[k] = v re-keys into another map: insertion order is
				// invisible. Writes into a slice are positional and fine too.
				continue
			case *ast.Ident:
				if l.Name == "_" {
					continue
				}
				// best = v is only order-free under a comparison guard
				// (the running min/max pattern).
				if !inBranch {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return false
}

// exprHasCall reports whether the expression contains any call other than
// the order-free builtins min, max, len, and abs-style conversions.
func exprHasCall(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch builtinName(info, call) {
		case "min", "max", "len", "cap":
			return true
		}
		if isConversion(info, call) {
			return true
		}
		found = true
		return false
	})
	return found
}
