// Package obsuse exercises the recorder-boxing half of obsguard from an
// instrumented caller's side: the recorder stays a concrete handle.
package obsuse

import "wrht/internal/obs"

// Thread passes the recorder as its concrete type: clean.
func Thread(r *obs.Recorder) { r.Add(1) }

// Keep holds the recorder in a concretely-typed struct field: clean.
type Keep struct {
	rec *obs.Recorder
}

func describe(v any) string { _ = v; return "recorder" }

func Box(r *obs.Recorder) any {
	return r // want `boxes the flight recorder`
}

func BoxArg(r *obs.Recorder) string {
	return describe(r) // want `boxes the flight recorder`
}

func BoxAssign(r *obs.Recorder) {
	var sink any
	sink = r // want `boxes the flight recorder`
	_ = sink
}

func BoxDecl(r *obs.Recorder) {
	var sink any = r // want `boxes the flight recorder`
	_ = sink
}
