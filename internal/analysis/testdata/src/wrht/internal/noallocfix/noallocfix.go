// Package noallocfix exercises the noalloc analyzer: tagged functions with
// seeded allocation sites, tagged functions using the allowed idioms, and an
// untagged twin proving the rule only fires under the directive.
package noallocfix

import "fmt"

//wrht:noalloc
func Boxes(v float64) string {
	return fmt.Sprint(v) // want `interface boxing`
}

//wrht:noalloc
func MakesMap() map[int]int {
	return make(map[int]int) // want `make allocates`
}

//wrht:noalloc
func SliceLit() []int {
	return []int{1, 2, 3} // want `slice literal`
}

//wrht:noalloc
func MapLit() map[int]int {
	return map[int]int{1: 1} // want `map literal`
}

//wrht:noalloc
func Concat(a, b string) string {
	return a + b // want `string concatenation`
}

//wrht:noalloc
func FreshAppend(xs []int) []int {
	out := append(xs, 1) // want `append into a fresh variable`
	return out
}

// ReuseAppend is the allowed scratch idiom x = append(x, ...): clean.
//
//wrht:noalloc
func ReuseAppend(xs []int, v int) []int {
	xs = append(xs, v)
	return xs
}

//wrht:noalloc
func Capture(n int) func() int {
	f := func() int { return n } // want `closure captures n`
	return f
}

// ColdError constructs its error on the failure path only: clean.
//
//wrht:noalloc
func ColdError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("noallocfix: bad n %d", n)
	}
	return n * 2, nil
}

// ColdPanic formats only when dying: clean.
//
//wrht:noalloc
func ColdPanic(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("noallocfix: bad n %d", n))
	}
	return n * 2
}

// Unchecked is the untagged twin of the violations above: clean because the
// contract only binds //wrht:noalloc functions.
func Unchecked(a, b string) string {
	_ = make([]int, 4)
	return a + b + fmt.Sprint(len(a))
}

// Suppressed shows a reasoned in-function exception: clean.
//
//wrht:noalloc
func Suppressed(a, b string) string {
	//wrht:allow noalloc -- fixture: proves a reasoned suppression silences the rule
	return a + b
}

// Gauge mirrors the flight recorder's nil-guarded method shape.
type Gauge struct {
	n    int64
	vals []float64
}

// Record is the disabled-path contract done right: clean.
//
//wrht:noalloc disabled
func (g *Gauge) Record(v float64) {
	if g == nil {
		return
	}
	g.vals = append(g.vals, v)
}

// Enabled's single nil-comparison return is its own disabled path: clean.
//
//wrht:noalloc disabled
func (g *Gauge) Enabled() bool { return g != nil }

//wrht:noalloc disabled
func (g *Gauge) Bad(v float64) {
	g.vals = append(g.vals, v) // want `dereferences g before`
}

//wrht:noalloc disabled
func (g *Gauge) Eager(v float64) {
	s := fmt.Sprint(v) // want `interface boxing`
	_ = s
	if g == nil {
		return
	}
	g.vals = append(g.vals, v)
}
