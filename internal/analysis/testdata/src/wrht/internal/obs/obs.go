// Package obs is a fixture mirror of the flight recorder: methods on
// *Recorder must reach their nil guard before touching the receiver.
package obs

// Recorder mimics the real recorder's nil-is-disabled contract.
type Recorder struct {
	n    int64
	vals []float64
}

// Add guards before the dereference: clean.
func (r *Recorder) Add(delta int64) {
	if r == nil {
		return
	}
	r.n += delta
}

// Total declares locals before the guard without touching r: clean.
func (r *Recorder) Total() int64 {
	var total int64
	if r == nil {
		return total
	}
	total = r.n
	return total
}

// Enabled is the single nil-comparison shape: clean.
func (r *Recorder) Enabled() bool { return r != nil }

// Sample guards with an ||-chain whose leftmost term is the nil check: clean.
func (r *Recorder) Sample(v float64, on bool) {
	if r == nil || !on {
		return
	}
	r.vals = append(r.vals, v)
}

// Bump delegates to a guarded sibling — safe on a nil pointer: clean.
func (r *Recorder) Bump() { r.Add(1) }

// drainLocked is a lock-held internal reached only past guarded entry
// points: exempt by suffix.
func (r *Recorder) drainLocked() { r.vals = r.vals[:0] }

func (r *Recorder) Unguarded(delta int64) {
	r.n += delta // want `uses receiver r before its nil guard`
}

func (r *Recorder) LateGuard() int64 {
	n := r.n // want `uses receiver r before its nil guard`
	if r == nil {
		return 0
	}
	return n
}

// Drain needs the receiver eagerly and documents why: clean.
func (r *Recorder) Drain() {
	//wrht:allow obsguard -- fixture: proves a reasoned suppression silences the rule
	r.vals = r.vals[:0]
}
