// Package ctxfix exercises the ctxflow analyzer from an in-scope library
// path: ...Context variants must thread their ctx, and internals must not
// mint context.Background.
package ctxfix

import "context"

func work(ctx context.Context) error {
	return ctx.Err()
}

// RunContext threads ctx into the work: clean.
func RunContext(ctx context.Context, n int) error {
	_ = n
	return work(ctx)
}

// PollContext uses ctx through a selector (Done/Err): clean.
func PollContext(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

type task struct {
	ctx context.Context
}

// NewTaskContext threads ctx into a struct field: clean.
func NewTaskContext(ctx context.Context) *task {
	return &task{ctx: ctx}
}

func DropContext(ctx context.Context, n int) error { // want `never threads ctx`
	_ = ctx
	return nil
}

func BlankContext(_ context.Context) error { // want `discards its context.Context parameter`
	return nil
}

// Plain is not a ...Context variant: clean even though it ignores ctx.
func Plain(ctx context.Context) error {
	return nil
}

// Detached mints a root context inside library internals.
func Detached() context.Context {
	return context.Background() // want `context.Background inside library internals`
}

// Todo is just as detached.
func Todo() context.Context {
	return context.TODO() // want `context.TODO inside library internals`
}

// Allowed is the reasoned exception: clean.
func Allowed() context.Context {
	//wrht:allow ctxflow -- fixture: proves a reasoned suppression silences the rule
	return context.Background()
}
