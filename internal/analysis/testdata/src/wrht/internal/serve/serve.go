// Package serve mirrors the allowlisted serving layer: the wall clock and
// the global rand are legal here, because serving measures real latency.
// The determinism analyzer must stay silent on this entire package.
package serve

import (
	"math/rand"
	"time"
)

// Now is wall-clock territory: no diagnostic.
func Now() time.Time { return time.Now() }

// Jitter uses the global source for request jitter: no diagnostic.
func Jitter() int { return rand.Intn(1000) }
