// Package determfix exercises every determinism rule from an in-scope
// package path. Each // want comment pins a seeded violation; the unmarked
// functions are the known-clean idioms the rule must keep permitting.
package determfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// UnsortedKeys leaks map iteration order into its returned slice.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order`
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the canonical collect-then-sort idiom: clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum aggregates commutatively: iteration order is invisible, clean.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// MaxVal is the running-max pattern under a comparison guard: clean.
func MaxVal(m map[string]int) int {
	best := 0
	count := 0
	for _, v := range m {
		count++
		if v > best {
			best = v
		}
	}
	return best + count
}

// ReKey writes into another map: insertion order is invisible, clean.
func ReKey(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Wall reads the wall clock inside the deterministic surface.
func Wall() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

// GlobalRand draws from the process-global source: irreproducible.
func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand`
}

// SeededRand derives an explicit stream: reproducible from the seed, clean.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// FormatMap hands a map straight to fmt.
func FormatMap(m map[string]int) string {
	return fmt.Sprintf("grid=%v", m) // want `map formatted`
}

// Suppressed demonstrates the reasoned line suppression: clean.
func Suppressed() int64 {
	//wrht:allow determinism -- fixture: proves a reasoned suppression silences the rule
	return time.Now().UnixNano()
}
