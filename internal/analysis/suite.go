package analysis

import "go/token"

// All returns wrhtlint's analyzer suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Noalloc, Ctxflow, Obsguard}
}

// RunModule loads the module containing dir, restricted to the given package
// patterns ("./..." by default), and returns every diagnostic the full suite
// produces, sorted by position. This is the single entry point shared by
// cmd/wrhtlint and the self-clean test, so "the repo lints clean" means the
// same thing in CI and in `go test`.
func RunModule(dir string, patterns []string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := LoadModule(dir, patterns)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(All(), pkgs, fset)
}

// RunTree loads the package tree rooted at root (import paths are
// root-relative, as in a testdata/src fixture layout) and applies the given
// analyzers to the named packages. Exposed for the analysistest fixture
// runner.
func RunTree(root string, analyzers []*Analyzer, paths []string) ([]Diagnostic, []*Package, *token.FileSet, error) {
	l := newLoader(root, "")
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			return nil, nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := runAnalyzers(analyzers, pkgs, l.fset)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, pkgs, l.fset, nil
}
