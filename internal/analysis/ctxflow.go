package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow protects the cancel-at-event-boundary contract (PR 9): a
// ...Context API variant that drops its ctx silently becomes uncancellable,
// and a library-internal context.Background() detaches a whole subtree from
// the caller's deadline. It enforces
//
//   - every function or method whose name ends in "Context" and takes a
//     context.Context must actually thread it: the parameter has to flow into
//     a call, a selector (ctx.Done(), ctx.Err()), a struct field, or a
//     return — `_ = ctx` does not count;
//   - library internals (the root package and internal/...) never call
//     context.Background() or context.TODO(): contexts are minted at the
//     binary edge (cmd/..., tests) and threaded down.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ensure ...Context variants thread ctx and internals never mint context.Background",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) error {
	for _, f := range p.Files {
		for _, fn := range enclosingFuncDecls(f) {
			checkContextVariant(p, fn)
		}
		if moduleScope(p.PkgPath) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.TypesInfo, call)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					p.Reportf(call.Pos(), "context.%s inside library internals detaches from the caller's deadline; thread a ctx parameter instead", fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// checkContextVariant flags ...Context functions that accept a ctx but never
// thread it anywhere observable.
func checkContextVariant(p *Pass, fn *ast.FuncDecl) {
	if !strings.HasSuffix(fn.Name.Name, "Context") {
		return
	}
	var param *ast.Ident
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !isContextType(p.TypesInfo, field.Type) {
				continue
			}
			if len(field.Names) == 0 {
				p.Reportf(field.Pos(), "%s discards its unnamed context.Context parameter; thread ctx into the work it guards", fn.Name.Name)
				return
			}
			param = field.Names[0]
			break
		}
	}
	if param == nil {
		return // no ctx parameter: the suffix is incidental
	}
	if param.Name == "_" {
		p.Reportf(param.Pos(), "%s discards its context.Context parameter; thread ctx into the work it guards", fn.Name.Name)
		return
	}
	obj := p.TypesInfo.Defs[param]
	if obj == nil {
		return
	}
	if !ctxThreaded(p.TypesInfo, fn.Body, obj) {
		p.Reportf(param.Pos(), "%s never threads ctx: cancellation cannot reach the simulation loop", fn.Name.Name)
	}
}

func isContextType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxThreaded reports whether obj (the ctx parameter) flows somewhere useful
// within body: as a call argument, a selector receiver, a composite-literal
// field, the source of an assignment to something other than blank, or a
// return value.
func ctxThreaded(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	threaded := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if threaded {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if ast.Unparen(arg) == ast.Node(id) {
					threaded = true
				}
			}
		case *ast.SelectorExpr:
			if parent.X == ast.Expr(id) {
				threaded = true
			}
		case *ast.KeyValueExpr:
			if parent.Value == ast.Expr(id) {
				threaded = true
			}
		case *ast.ReturnStmt, *ast.CompositeLit:
			threaded = true
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if ast.Unparen(rhs) == ast.Node(id) && i < len(parent.Lhs) {
					if lhs, ok := parent.Lhs[i].(*ast.Ident); !ok || lhs.Name != "_" {
						threaded = true
					}
				}
			}
		case *ast.UnaryExpr, *ast.BinaryExpr:
			// ctx != nil checks and &ctx escapes both count as real use only
			// for the unary case; comparisons alone do not thread.
			if _, isUnary := parent.(*ast.UnaryExpr); isUnary {
				threaded = true
			}
		}
		return true
	})
	return threaded
}
