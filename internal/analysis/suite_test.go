package analysis_test

import (
	"testing"

	"wrht/internal/analysis"
	"wrht/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture packages under testdata/src: the
// // want comments pin seeded violations (delete a sort, add a time.Now, box
// an interface in a //wrht:noalloc function, drop a nil guard — each must
// fire) and the unmarked functions pin the idioms that must stay clean.

func TestDeterminismFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism,
		"wrht/internal/determfix", "wrht/internal/serve")
}

func TestNoallocFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Noalloc, "wrht/internal/noallocfix")
}

func TestCtxflowFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Ctxflow, "wrht/internal/ctxfix")
}

func TestObsguardFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Obsguard,
		"wrht/internal/obs", "wrht/internal/obsuse")
}

// TestAnalyzerNamesStable pins the rule names: they are part of the
// suppression syntax (//wrht:allow <rule> -- reason) committed across the
// repository, so renaming one silently un-suppresses every existing allow.
func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"determinism", "noalloc", "ctxflow", "obsguard"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d named %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}
