package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed + type-checked package of the target module (or of
// a fixture tree), ready for the analyzers.
type Package struct {
	Path  string // import path ("wrht/internal/sim")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader type-checks a directory tree from source. Intra-tree imports load
// recursively; everything else (the standard library) defers to go/importer's
// "source" compiler, so no export data or network is needed. Test files are
// excluded: the invariants wrhtlint enforces are production-path properties,
// and tests deliberately use wall clocks, maps, and ad-hoc randomness.
type loader struct {
	fset    *token.FileSet
	root    string // absolute directory of the tree (module root or testdata/src)
	module  string // import-path prefix mapped to root ("wrht", or "" for fixtures)
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor maps an import path inside the tree to its directory, or reports
// that the path is external.
func (l *loader) dirFor(path string) (string, bool) {
	if l.module == "" {
		// Fixture tree: an import is internal iff its directory exists under
		// the root; everything else (the standard library) is external.
		dir := filepath.Join(l.root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer over the chain: tree-internal paths load
// from source here, all other paths go to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package at import path (which must be
// inside the tree), memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("%q is outside the loaded tree", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory, sorted by name so
// loads are deterministic.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath reads the module path out of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// LoadModule type-checks the module rooted at dir and returns the packages
// matching patterns ("./..." for the whole module; "./x/..." for a subtree;
// "./x" for one package) plus the shared FileSet. Directories named testdata,
// hidden directories, and _test.go files are skipped.
func LoadModule(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, nil, err
	}
	module, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	l := newLoader(root, module)

	var rels []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if len(rels) == 0 || rels[len(rels)-1] != rel {
			rels = append(rels, rel)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(rels)
	rels = dedupSorted(rels)

	want := func(rel string) bool {
		for _, pat := range patterns {
			if matchPattern(pat, rel) {
				return true
			}
		}
		return false
	}

	var pkgs []*Package
	for _, rel := range rels {
		if !want(rel) {
			continue
		}
		path := module
		if rel != "." {
			path = module + "/" + rel
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, l.fset, nil
}

// matchPattern matches a go-style package pattern against a slash-separated
// module-relative directory ("." for the root).
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" && rel == "." {
		return true
	}
	if base, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == base || strings.HasPrefix(rel, base+"/")
	}
	return rel == pat
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
