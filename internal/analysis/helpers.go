package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, conversions, and func-valued
// expressions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isConversion reports whether call is a type conversion rather than a
// function or builtin call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin a call invokes ("make", "new",
// "append", ...) or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// isNilComparison reports whether expr (parens stripped) compares obj's
// identifier against nil with == or !=.
func isNilComparison(info *types.Info, expr ast.Expr, obj types.Object) bool {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return false
	}
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := info.Uses[id].(*types.Nil)
		return isNilObj
	}
	return (isObj(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isObj(bin.Y))
}

// isNilGuard reports whether stmt is the disabled-path guard idiom: an
// if-statement whose condition leads with `recv == nil` (alone or as the
// leftmost operand of an ||-chain) and whose body unconditionally returns.
func isNilGuard(info *types.Info, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || len(ifs.Body.List) == 0 {
		return false
	}
	cond := ast.Unparen(ifs.Cond)
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.LOR {
			break
		}
		cond = ast.Unparen(bin.X)
	}
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL || !isNilComparison(info, bin, recv) {
		return false
	}
	last := ifs.Body.List[len(ifs.Body.List)-1]
	_, isReturn := last.(*ast.ReturnStmt)
	return isReturn
}

// receiverObject returns the declared receiver variable of fn, or nil for
// functions, blank receivers, and bodyless declarations.
func receiverObject(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// receiverBaseName returns the type name of fn's receiver base type
// ("Recorder" for *Recorder) or "".
func receiverBaseName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// forEachBoxedArg invokes report for every call argument whose corresponding
// parameter is an interface type while the argument's static type is
// concrete — the canonical boxing allocation. Conversions and builtin calls
// are handled by their own rules.
func forEachBoxedArg(info *types.Info, call *ast.CallExpr, report func(arg ast.Expr, param types.Type)) {
	if isConversion(info, call) || builtinName(info, call) != "" {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-arg boxing
			}
			param = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			param = params.At(i).Type()
		default:
			continue
		}
		if boxesInto(info, arg, param) {
			report(arg, param)
		}
	}
}

// boxesInto reports whether assigning arg to a destination of type dst would
// allocate an interface box: dst is a non-empty-or-empty interface, arg's
// type is concrete, and arg is not the untyped nil.
func boxesInto(info *types.Info, arg ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	if _, isTypeParam := dst.(*types.TypeParam); isTypeParam {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	if _, isTypeParam := tv.Type.(*types.TypeParam); isTypeParam {
		return false
	}
	return true
}

// enclosingFuncDecls yields every function declaration with a body in f.
func enclosingFuncDecls(f *ast.File) []*ast.FuncDecl {
	var fns []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			fns = append(fns, fn)
		}
	}
	return fns
}

// typeIsObsPointer reports whether t is *P.name where P's import path ends in
// wantPkgSuffix (e.g. "internal/obs") — used to recognize the recorder types
// in both the real module and the fixture tree.
func typeIsObsPointer(t types.Type, wantPkgSuffix string, names ...string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), wantPkgSuffix) {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// moduleScope reports whether path is inside the analyzed module's library
// surface: the root package or anything under internal/. Fixture packages use
// the same "wrht/..." shape so the analyzers behave identically under test.
func moduleScope(path string) bool {
	return path == "wrht" || strings.HasPrefix(path, "wrht/internal/")
}
