package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc is the static complement to TestRunAllocationFree and
// TestDisabledPathAllocationFree: functions tagged
//
//	//wrht:noalloc
//
// are the simulator's steady-state hot loops (the sim.Engine event loop, the
// wdm.Workspace scratch paths, the step pricers) and must stay free of
// obvious allocation sites:
//
//   - interface boxing (concrete argument to an interface parameter, or a
//     concrete value returned/assigned as an interface);
//   - closures that capture enclosing locals;
//   - map/slice composite literals, make, and new;
//   - append into a freshly declared variable (growth that a reused scratch
//     buffer would amortize; x = append(x, ...) is the allowed idiom);
//   - string concatenation and string<->[]byte conversions.
//
// Cold diagnostics are exempt: blocks that end by panicking or by returning
// a freshly constructed error (fmt.Errorf / errors.New) run at most once per
// failure, not per event.
//
// The variant
//
//	//wrht:noalloc disabled
//
// tags the flight recorder's nil-receiver methods: only the disabled prefix
// — statements up to and including the first `if r == nil { return }` guard
// — must be allocation-free (and the guard must exist), so the one-branch
// zero-cost disabled path survives new instrumentation while the enabled
// path stays free to record.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "check //wrht:noalloc functions for obvious allocation sites",
	Run:  runNoalloc,
}

func runNoalloc(p *Pass) error {
	for _, f := range p.Files {
		for _, fn := range enclosingFuncDecls(f) {
			tagged, disabledOnly := noallocMode(fn)
			if !tagged {
				continue
			}
			if disabledOnly {
				checkDisabledPrefix(p, fn)
				continue
			}
			for _, stmt := range fn.Body.List {
				checkNoallocStmt(p, fn, stmt)
			}
		}
	}
	return nil
}

// checkDisabledPrefix verifies the //wrht:noalloc disabled contract: the
// body must reach a nil-receiver guard before dereferencing the receiver,
// and every statement up to and including that guard must be allocation-free.
func checkDisabledPrefix(p *Pass, fn *ast.FuncDecl) {
	recv := receiverObject(p.TypesInfo, fn)
	if recv == nil {
		p.Reportf(fn.Pos(), "//wrht:noalloc disabled requires a named receiver to guard on")
		return
	}
	for _, stmt := range fn.Body.List {
		checkNoallocStmt(p, fn, stmt)
		if isNilGuard(p.TypesInfo, stmt, recv) {
			return
		}
		// Any receiver use beyond nil comparisons or method-call delegation
		// (both safe on a nil pointer; callees carry their own guards) means
		// the guard never came.
		if use := firstRecvUse(p.TypesInfo, stmt, recv); use != nil {
			p.Reportf(use.Pos(), "//wrht:noalloc disabled: %s dereferences %s before an `if %s == nil { return }` guard; the disabled path must be one branch", fn.Name.Name, recv.Name(), recv.Name())
			return
		}
	}
	// No guard, but also no dereference: shapes like `return r != nil`
	// (Enabled) or pure delegation are their own disabled path.
}

// checkNoallocStmt walks one statement of a tagged function, skipping cold
// error/panic blocks.
func checkNoallocStmt(p *Pass, fn *ast.FuncDecl, stmt ast.Stmt) {
	exemptAppends := make(map[*ast.CallExpr]bool)
	markReuseAppends(p.TypesInfo, stmt, exemptAppends)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			// Cold blocks (terminating in panic or a constructed-error
			// return) are failure paths, not steady-state work.
			if n.Cond != nil {
				ast.Inspect(n.Cond, walk)
			}
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			if !coldBlock(p.TypesInfo, n.Body) {
				ast.Inspect(n.Body, walk)
			}
			if n.Else != nil {
				ast.Inspect(n.Else, walk)
			}
			return false
		case *ast.CompositeLit:
			tv, ok := p.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in //wrht:noalloc function %s", fn.Name.Name)
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in //wrht:noalloc function %s", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkNoallocCall(p, fn, n, exemptAppends)
		case *ast.FuncLit:
			if capt := capturedLocal(p.TypesInfo, fn, n); capt != nil {
				p.Reportf(n.Pos(), "closure captures %s and allocates in //wrht:noalloc function %s; use integer-dispatch handlers instead", capt.Name(), fn.Name.Name)
			}
			return false // don't descend: the closure body runs elsewhere
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(p.TypesInfo, n) {
				p.Reportf(n.Pos(), "string concatenation allocates in //wrht:noalloc function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			checkNoallocAssign(p, fn, n)
		case *ast.ValueSpec:
			if n.Type != nil {
				if dtv, ok := p.TypesInfo.Types[n.Type]; ok {
					for _, v := range n.Values {
						if boxesInto(p.TypesInfo, v, dtv.Type) {
							p.Reportf(v.Pos(), "declaration boxes %s into interface in //wrht:noalloc function %s", typeString(p.TypesInfo, v), fn.Name.Name)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			checkNoallocReturn(p, fn, n)
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "goroutine launch allocates in //wrht:noalloc function %s", fn.Name.Name)
		}
		return true
	}
	ast.Inspect(stmt, walk)
}

func checkNoallocCall(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr, exemptAppends map[*ast.CallExpr]bool) {
	switch builtinName(p.TypesInfo, call) {
	case "make":
		p.Reportf(call.Pos(), "make allocates in //wrht:noalloc function %s; hoist into reusable scratch", fn.Name.Name)
		return
	case "new":
		p.Reportf(call.Pos(), "new allocates in //wrht:noalloc function %s", fn.Name.Name)
		return
	case "append":
		if !exemptAppends[call] {
			p.Reportf(call.Pos(), "append into a fresh variable can grow in //wrht:noalloc function %s; reuse the buffer with x = append(x, ...)", fn.Name.Name)
		}
		return
	case "":
	default:
		return // len, cap, min, max, delete, ... do not allocate
	}
	if isConversion(p.TypesInfo, call) {
		checkNoallocConversion(p, fn, call)
		return
	}
	forEachBoxedArg(p.TypesInfo, call, func(arg ast.Expr, _ types.Type) {
		p.Reportf(arg.Pos(), "interface boxing of %s argument allocates in //wrht:noalloc function %s", typeString(p.TypesInfo, arg), fn.Name.Name)
	})
}

func checkNoallocConversion(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	tv := p.TypesInfo.Types[call.Fun]
	dst := tv.Type
	if len(call.Args) != 1 {
		return
	}
	src, ok := p.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	if boxesInto(p.TypesInfo, call.Args[0], dst) {
		p.Reportf(call.Pos(), "conversion to interface boxes %s in //wrht:noalloc function %s", src.Type.String(), fn.Name.Name)
		return
	}
	dstBasic, dstIsBasic := dst.Underlying().(*types.Basic)
	srcSlice, srcIsSlice := src.Type.Underlying().(*types.Slice)
	if dstIsBasic && dstIsString(dstBasic) && srcIsSlice && elemIsByteOrRune(srcSlice) {
		p.Reportf(call.Pos(), "[]byte->string conversion copies in //wrht:noalloc function %s", fn.Name.Name)
	}
	if dstSlice, ok := dst.Underlying().(*types.Slice); ok && elemIsByteOrRune(dstSlice) {
		if srcBasic, ok := src.Type.Underlying().(*types.Basic); ok && dstIsString(srcBasic) {
			p.Reportf(call.Pos(), "string->[]byte conversion copies in //wrht:noalloc function %s", fn.Name.Name)
		}
	}
}

func dstIsString(b *types.Basic) bool { return b.Info()&types.IsString != 0 }

func elemIsByteOrRune(s *types.Slice) bool {
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// checkNoallocAssign flags assignments that box a concrete value into an
// interface-typed destination (including +=-style string growth).
func checkNoallocAssign(p *Pass, fn *ast.FuncDecl, s *ast.AssignStmt) {
	if s.Tok == token.ADD_ASSIGN {
		if tv, ok := p.TypesInfo.Types[s.Lhs[0]]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && dstIsString(b) {
				p.Reportf(s.Pos(), "string += allocates in //wrht:noalloc function %s", fn.Name.Name)
			}
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		ltv, ok := p.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		if boxesInto(p.TypesInfo, s.Rhs[i], ltv.Type) {
			p.Reportf(s.Rhs[i].Pos(), "assignment boxes %s into interface in //wrht:noalloc function %s", typeString(p.TypesInfo, s.Rhs[i]), fn.Name.Name)
		}
	}
}

// checkNoallocReturn flags returns that box concrete values into interface
// results.
func checkNoallocReturn(p *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj := p.TypesInfo.Defs[fn.Name]
	tfn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	results := tfn.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // naked return or comma-ok spread
	}
	for i, res := range ret.Results {
		if boxesInto(p.TypesInfo, res, results.At(i).Type()) {
			p.Reportf(res.Pos(), "return boxes %s into interface in //wrht:noalloc function %s", typeString(p.TypesInfo, res), fn.Name.Name)
		}
	}
}

// markReuseAppends records the append calls in the allowed reuse idiom
// `x = append(x, ...)` (same destination as first argument, pre-existing
// variable) so the walk can skip them.
func markReuseAppends(info *types.Info, stmt ast.Stmt, exempt map[*ast.CallExpr]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || s.Tok != token.ASSIGN || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, rhs := range s.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
				continue
			}
			if sameStorage(info, s.Lhs[i], call.Args[0]) {
				exempt[call] = true
			}
		}
		return true
	})
}

// sameStorage reports whether two expressions statically name the same
// variable or field chain (x, s.buf, w.rounds[i] with identical index ident).
func sameStorage(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(a) != nil && info.ObjectOf(a) == info.ObjectOf(bid)
	case *ast.SelectorExpr:
		bsel, ok := b.(*ast.SelectorExpr)
		return ok && info.ObjectOf(a.Sel) == info.ObjectOf(bsel.Sel) && sameStorage(info, a.X, bsel.X)
	case *ast.IndexExpr:
		bidx, ok := b.(*ast.IndexExpr)
		return ok && sameStorage(info, a.X, bidx.X) && sameStorage(info, a.Index, bidx.Index)
	}
	return false
}

// capturedLocal returns a variable the func literal captures from the
// enclosing function (receiver, parameter, or local), or nil.
func capturedLocal(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) types.Object {
	var captured types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= enclosing.Pos() && pos < enclosing.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			captured = v
			return false
		}
		return true
	})
	return captured
}

// coldBlock reports whether the block is a failure path: its final statement
// panics or returns a freshly constructed error.
func coldBlock(info *types.Info, block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		return ok && builtinName(info, call) == "panic"
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
					pkg := fn.Pkg().Path()
					if (pkg == "fmt" && fn.Name() == "Errorf") || (pkg == "errors" && fn.Name() == "New") {
						return true
					}
				}
			}
		}
	}
	return false
}

func isStringType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeString(info *types.Info, expr ast.Expr) string {
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "value"
}
