package analysis_test

import (
	"testing"

	"wrht/internal/analysis"
)

// TestRepoSelfClean is the guarantee future PRs inherit: the full wrhtlint
// suite reports zero diagnostics on this repository. It runs exactly what
// `go run ./cmd/wrhtlint ./...` and the CI step run, so a new map range in a
// pricing path, a stray time.Now, an allocation in a //wrht:noalloc loop, or
// an unguarded recorder method fails `go test` before it ever reaches CI.
func TestRepoSelfClean(t *testing.T) {
	diags, err := analysis.RunModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s): fix them or add //wrht:allow <rule> -- <reason> with justification", len(diags))
	}
}
