// Package analysis is wrhtlint's static-analysis suite: four analyzers that
// enforce the repository's load-bearing invariants at review time instead of
// runtime —
//
//   - determinism: no map-iteration order, wall clock, or global randomness
//     can reach priced results, rendered tables, or trace output;
//   - noalloc: functions marked //wrht:noalloc stay free of obvious
//     allocation sites (the static complement to TestRunAllocationFree and
//     TestDisabledPathAllocationFree);
//   - ctxflow: every ...Context API variant threads its ctx parameter, and
//     library internals never mint their own context.Background();
//   - obsguard: the flight recorder's nil/disabled-guard idiom survives new
//     instrumentation, and *obs.Recorder is never boxed into an interface.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, a testdata/src fixture runner with // want
// comments) but is built only on the standard library's go/ast + go/types,
// because this module carries no third-party dependencies: packages are
// type-checked from source via go/importer's "source" compiler, chained with
// a module-aware importer for intra-module paths (see load.go).
//
// Findings are suppressed line-by-line with
//
//	//wrht:allow <rule> -- <reason>
//
// which silences <rule> on the comment's own line and the line directly
// below it. The reason is mandatory; a reasonless allow is itself a
// diagnostic. See DESIGN.md §12 for the rule catalogue and extension guide.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one wrhtlint rule: a name (used in //wrht:allow
// suppressions and diagnostic output), user-facing documentation, and the Run
// function invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package, mirroring
// golang.org/x/tools/go/analysis.Pass. Report and Reportf drop findings the
// file's //wrht:allow comments suppress.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	allow map[string]allowLines // filename -> suppressed lines, by rule
	diags *[]Diagnostic
}

// allowLines maps a line number to the set of rule names allowed there.
type allowLines map[int]map[string]bool

// Reportf records a diagnostic at pos unless an //wrht:allow comment for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.allow[position.Filename]; ok {
		if rules, ok := lines[position.Line]; ok && rules[p.Analyzer.Name] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is the line-level suppression prefix. The full form is
// //wrht:allow <rule> -- <reason>; it applies to its own line and the next.
const allowDirective = "wrht:allow"

// noallocDirective marks a function for the noalloc analyzer. The bare form
// checks the whole body; "//wrht:noalloc disabled" checks only the prefix up
// to and including the first nil-receiver guard (the disabled fast path).
const noallocDirective = "wrht:noalloc"

// parseAllows scans a file's comments for //wrht:allow directives and returns
// the per-line suppression map. Malformed directives (no rule, or a missing
// "-- reason" tail) are reported via report so a suppression can never
// silently rot into a no-op.
func parseAllows(fset *token.FileSet, file *ast.File, report func(pos token.Pos, msg string)) allowLines {
	var lines allowLines
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := directiveText(c.Text, allowDirective)
			if !ok {
				continue
			}
			rulePart, _, hasReason := strings.Cut(text, "--")
			rules := strings.Fields(rulePart)
			if !hasReason || len(rules) == 0 {
				report(c.Pos(), "malformed suppression: want //wrht:allow <rule> -- <reason>")
				continue
			}
			if lines == nil {
				lines = make(allowLines)
			}
			line := fset.Position(c.Pos()).Line
			for _, rule := range rules {
				for _, ln := range [2]int{line, line + 1} {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					set[rule] = true
				}
			}
		}
	}
	return lines
}

// directiveText returns the argument text of a //name directive comment
// ("//wrht:allow determinism -- x" with name "wrht:allow" yields
// "determinism -- x") and whether the comment is that directive.
func directiveText(comment, name string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	body = strings.TrimPrefix(body, " ") // tolerate "// wrht:allow" from gofmt
	rest, ok := strings.CutPrefix(body, name)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. wrht:allowfoo
	}
	return strings.TrimSpace(rest), true
}

// noallocMode reports whether fn carries the //wrht:noalloc directive and, if
// so, whether it is the "disabled" (guard-prefix-only) variant.
func noallocMode(fn *ast.FuncDecl) (tagged, disabledOnly bool) {
	if fn.Doc == nil {
		return false, false
	}
	for _, c := range fn.Doc.List {
		text, ok := directiveText(c.Text, noallocDirective)
		if !ok {
			continue
		}
		return true, text == "disabled"
	}
	return false, false
}

// runAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics sorted by (file, line, column, analyzer).
func runAnalyzers(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := make(map[string]allowLines)
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			allow[name] = parseAllows(fset, f, func(pos token.Pos, msg string) {
				diags = append(diags, Diagnostic{
					Pos:      fset.Position(pos),
					Analyzer: "wrhtlint",
					Message:  msg,
				})
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
				allow:     allow,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
