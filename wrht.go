// Package wrht is the public API of this repository: a reproduction of
// "Efficient All-reduce for Distributed DNN Training in Optical Interconnect
// Systems" (Dai et al., PPoPP 2023). It plans and prices all-reduce
// operations for data-parallel DNN training on a WDM optical ring
// interconnect (the paper's Wrht scheme) and on electrical baselines
// (ring all-reduce, recursive doubling, and friends), using wavelength- and
// flow-level simulators underneath.
//
// Quick start — price one all-reduce on a dedicated ring:
//
//	cfg := wrht.DefaultConfig(1024)
//	res, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, wrht.MustModel("VGG16").Bytes)
//	fmt.Println(res.Seconds)
//
// Multi-tenant fabric — co-schedule concurrent jobs sharing one ring's
// wavelength budget under static, first-fit, or priority-preemption
// partitioning (see fabric.go and DESIGN.md §3):
//
//	jobs := []wrht.JobSpec{
//		{Name: "serve", Model: "AlexNet", Priority: 2, MaxWavelengths: 16},
//		{Name: "train", Model: "VGG16", ArrivalSec: 1e-3},
//	}
//	fr, err := wrht.SimulateFabric(cfg, jobs, wrht.FabricPolicy{Kind: wrht.FabricPriority})
//	fmt.Println(fr.MakespanSec, fr.Fairness, fr.Utilization)
//
// Fault injection — replay any fabric or fleet simulation under a seeded,
// deterministic failure model (wavelength darkening, transient job crashes
// with checkpoint rollback, whole-fabric outages routed through a fleet
// recovery policy; see faultplan.go and DESIGN.md §10). The zero plan is
// guaranteed to leave every result bit-identical to a fault-free run:
//
//	plan := wrht.FaultPlan{
//		Seed: 1, HorizonSec: 0.1,
//		WavelengthMTBFSec: 20e-3, WavelengthMTTRSec: 2e-3,
//	}
//	fr, err = wrht.SimulateFabric(cfg, jobs, wrht.FabricPolicy{Kind: wrht.FabricElastic}, plan)
//	fmt.Println(fr.Retries, fr.LostWorkSec, fr.Availability)
//
// In a fleet, FleetOptions.Faults arms the same plan on the shared
// timeline and FleetOptions.Recovery picks what happens to jobs caught in
// fabric outages (wrht.RecoveryRetrySameFabric, wrht.RecoveryFailFast, or
// wrht.RecoveryMigrateOnFailure).
//
// Multi-axis experiments — declare a grid and let the concurrent engine
// price it with a shared plan cache (see sweep.go and DESIGN.md §6):
//
//	res, err := wrht.RunSweep(wrht.SweepSpec{
//		Nodes:  []int{128, 256, 512, 1024},
//		Models: []string{"AlexNet", "VGG16"},
//	})
//
// Pricing runs on a zero-allocation fast path — columnar schedules, pooled
// simulator state, and three memoization layers (plan → schedule →
// simulation; DESIGN.md §7). A SweepSession keeps those caches warm across
// calls, so repeated sweeps and fabric co-simulations never recompute a
// configuration:
//
//	sess := wrht.NewSweepSession()
//	r1, _ := sess.RunSweep(spec)        // cold
//	r2, _ := sess.RunSweep(spec)        // served from the session caches
//	fmt.Println(sess.Stats())
//
// Sessions are safe for concurrent use (results stay bit-identical to
// serial calls), and every pricing surface has a Context variant that
// cancels in-flight simulations at event boundaries
// (sess.RunSweepContext, sess.SimulateFabricContext, …).
//
// Serving — cmd/serve runs an overload-safe HTTP/JSON pricing service
// over a sharded pool of warm sessions, with bounded admission (429 +
// Retry-After), per-request deadlines, duplicate-query coalescing, tiered
// degradation under sustained pressure, and graceful drain on SIGTERM;
// cmd/loadgen measures it (DESIGN.md §11):
//
//	go run ./cmd/serve -addr :8080
//	curl -s localhost:8080/v1/commtime \
//	    -d '{"Nodes":128,"Algorithm":"wrht","Bytes":1048576}'
//	go run ./cmd/loadgen -conc 8 -duration 5s
//
// Linting — the repository's invariants (seeded runs are bit-identical,
// //wrht:noalloc functions never allocate, ...Context variants thread
// their ctx, recorder methods guard before dereferencing) are enforced
// statically by the wrhtlint suite (internal/analysis, DESIGN.md §12).
// CI and TestRepoSelfClean keep the tree diagnostic-clean:
//
//	go run ./cmd/wrhtlint ./...          # whole module, exit 1 on findings
//	go run ./cmd/wrhtlint ./internal/sim # one subtree
//	go run ./cmd/wrhtlint -list          # rule catalogue
//
// A finding is fixed, or suppressed on its own line with a mandatory
// reason: //wrht:allow <rule> -- <why this one is safe>.
//
// Other surfaces: MultiRackTime (hierarchical rings), TrainingIteration
// (DDP overlap), ScheduleOutline (per-step inspection), EnergyReport.
// Runnable programs live in examples/ (quickstart, multi_tenant,
// ddp_training, …) and cmd/ (figure2, sweep, experiments, fabricsim,
// wrhtsim, wrhtviz, serve, loadgen); DESIGN.md holds the system map and
// evaluation defaults.
package wrht

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/electrical"
	"wrht/internal/exp"
	"wrht/internal/model"
	"wrht/internal/optical"
	"wrht/internal/runner"
	"wrht/internal/trace"
	"wrht/internal/wdm"
)

// Algorithm names an all-reduce algorithm/substrate combination.
type Algorithm string

const (
	// AlgERing is ring all-reduce on the electrical network (paper: E-Ring).
	AlgERing Algorithm = "e-ring"
	// AlgRD is recursive doubling on the electrical network (paper: RD).
	AlgRD Algorithm = "rd"
	// AlgHD is halving-doubling (Rabenseifner) on the electrical network.
	AlgHD Algorithm = "hd"
	// AlgBinomial is a binomial reduce+broadcast tree on the electrical network.
	AlgBinomial Algorithm = "binomial"
	// AlgORing is ring all-reduce on the optical ring with one wavelength
	// per transfer (paper: O-Ring).
	AlgORing Algorithm = "o-ring"
	// AlgORingStriped is the ablation variant of O-Ring striping each
	// transfer across all wavelengths.
	AlgORingStriped Algorithm = "o-ring-striped"
	// AlgWrht is the paper's scheme with the optimizer-chosen group size.
	AlgWrht Algorithm = "wrht"
	// AlgWrhtUnstriped is Wrht restricted to one wavelength per transfer
	// (the paper's literal wavelength accounting).
	AlgWrhtUnstriped Algorithm = "wrht-unstriped"
	// AlgWrhtPipelined is the chunked-pipeline extension of the unstriped
	// scheme: chunks flow through the tree stages concurrently on distinct
	// wavelengths (Config.PipelineChunks; default 64).
	AlgWrhtPipelined Algorithm = "wrht-pipelined"
)

// Algorithms returns every supported algorithm in report order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgERing, AlgRD, AlgHD, AlgBinomial,
		AlgORing, AlgORingStriped, AlgWrht, AlgWrhtUnstriped, AlgWrhtPipelined,
	}
}

// PaperAlgorithms returns the four algorithms of the paper's Figure 2, in
// the paper's legend order.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{AlgERing, AlgRD, AlgORing, AlgWrht}
}

// Config describes the cluster under test.
type Config struct {
	// Nodes is the worker count (the paper sweeps 128–1024).
	Nodes int
	// Optical parameterizes the WDM ring (TeraRack-like defaults).
	Optical optical.Params
	// Electrical parameterizes the SimGrid-like electrical network.
	Electrical electrical.Params
	// BytesPerElem is the gradient element width (4 = FP32).
	BytesPerElem int
	// WrhtGroupSize fixes Wrht's m; 0 lets the optimizer choose.
	WrhtGroupSize int
	// WrhtGreedyA2A switches Wrht to the greedy all-to-all trigger.
	WrhtGreedyA2A bool
	// PipelineChunks sets the chunk count for AlgWrhtPipelined (0 = 64).
	PipelineChunks int
}

// DefaultConfig returns the evaluation defaults for n workers (DESIGN.md §4).
func DefaultConfig(n int) Config {
	return Config{
		Nodes:        n,
		Optical:      optical.DefaultParams(),
		Electrical:   electrical.DefaultParams(),
		BytesPerElem: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("wrht: need at least 2 nodes, got %d", c.Nodes)
	}
	if err := c.Optical.Validate(); err != nil {
		return err
	}
	if err := c.Electrical.Validate(); err != nil {
		return err
	}
	if c.BytesPerElem < 1 {
		return fmt.Errorf("wrht: BytesPerElem %d", c.BytesPerElem)
	}
	return nil
}

// Result is the outcome of pricing one algorithm.
type Result struct {
	Algorithm Algorithm
	// Substrate identifies the simulated network.
	Substrate string
	// Seconds is the simulated end-to-end communication time.
	Seconds float64
	// PredictedSeconds is the closed-form analytic time (model package);
	// simulation and prediction agree within ~1%.
	PredictedSeconds float64
	// Steps is the number of synchronous communication steps.
	Steps int
	// MaxWavelengths is the peak number of lit wavelengths (optical only).
	MaxWavelengths int
}

// ModelSpec is a catalog entry of the paper's evaluation networks.
type ModelSpec struct {
	Name   string
	Params int64
	// Bytes is the FP32 gradient size.
	Bytes int64
	// Layers is the number of parameterized layers.
	Layers int
}

// Models returns the paper's four evaluation networks (AlexNet, VGG16,
// ResNet50, GoogLeNet) with layer-accurate parameter counts.
func Models() []ModelSpec {
	var out []ModelSpec
	for _, m := range dnn.PaperModels() {
		out = append(out, ModelSpec{
			Name:   m.Name,
			Params: m.TotalParams(),
			Bytes:  m.GradientBytes(4),
			Layers: len(m.Layers),
		})
	}
	return out
}

// MustModel returns the named catalog model or panics; use for the four
// known names.
func MustModel(name string) ModelSpec {
	m, err := dnn.ByName(name)
	if err != nil {
		panic(err)
	}
	return ModelSpec{
		Name:   m.Name,
		Params: m.TotalParams(),
		Bytes:  m.GradientBytes(4),
		Layers: len(m.Layers),
	}
}

// planBuilder abstracts core.BuildPlan so sweeps can inject a shared
// memoized plan cache (internal/exp) into the pricing path; the default is
// core.BuildPlan itself.
type planBuilder func(n, w int, opts core.Options) (*core.Plan, error)

// wrhtOptions lowers the configuration to planner options for alg (striping
// is an algorithm property: only AlgWrht rides residual WDM capacity).
func wrhtOptions(cfg Config, alg Algorithm) core.Options {
	opts := core.DefaultOptions()
	opts.Cost = model.CostParamsOf(cfg.Optical)
	opts.Striping = alg == AlgWrht
	opts.M = cfg.WrhtGroupSize
	if cfg.WrhtGreedyA2A {
		opts.Policy = core.A2AGreedy
	}
	return opts
}

// pipelineChunks resolves the chunk count for AlgWrhtPipelined.
func pipelineChunks(cfg Config) int {
	if cfg.PipelineChunks == 0 {
		return 64
	}
	return cfg.PipelineChunks
}

// schedName maps an algorithm to its schedule constructor's identity for
// the cross-run schedule cache: E-Ring, O-Ring, and striped O-Ring all
// lower to the same ring schedule, RD/HD/Binomial to theirs; the Wrht
// variants are identified by their plan signature instead ("").
func schedName(alg Algorithm) string {
	switch alg {
	case AlgERing, AlgORing, AlgORingStriped:
		return "ring"
	case AlgRD:
		return "rd"
	case AlgHD:
		return "hd"
	case AlgBinomial:
		return "binomial"
	default:
		return ""
	}
}

// buildCompactSchedule constructs the columnar (per-transfer) schedule and
// optional Wrht plan for alg — the form the message-level event simulator
// consumes (EventLevelTime); the caller owns the schedule. The dispatch
// mirrors buildSchedule/buildClassSchedule but keeps the direct columnar
// generators (RingAllReduceCompact, Plan.CompactSchedule) so the event-sim
// path never materializes boxed per-transfer objects.
func buildCompactSchedule(cfg Config, alg Algorithm, elems int) (*collective.CompactSchedule, *core.Plan, error) {
	switch alg {
	case AlgERing, AlgORing, AlgORingStriped:
		cs, err := collective.RingAllReduceCompact(cfg.Nodes, elems)
		return cs, nil, err
	case AlgRD:
		cs, err := compactOf(collective.RecursiveDoubling(cfg.Nodes, elems))
		return cs, nil, err
	case AlgHD:
		cs, err := compactOf(collective.HalvingDoubling(cfg.Nodes, elems))
		return cs, nil, err
	case AlgBinomial:
		cs, err := compactOf(collective.BinomialTree(cfg.Nodes, elems))
		return cs, nil, err
	case AlgWrht, AlgWrhtUnstriped, AlgWrhtPipelined:
		plan, err := core.BuildPlan(cfg.Nodes, cfg.Optical.Wavelengths, wrhtOptions(cfg, alg))
		if err != nil {
			return nil, nil, err
		}
		if alg == AlgWrhtPipelined {
			cs, err := compactOf(plan.PipelinedSchedule(elems, pipelineChunks(cfg)))
			return cs, plan, err
		}
		cs, err := plan.CompactSchedule(elems)
		return cs, plan, err
	default:
		return nil, nil, fmt.Errorf("wrht: unknown algorithm %q", alg)
	}
}

// buildClassSchedule constructs the symmetry-aware classed schedule (and
// optional Wrht plan) for alg, together with the schedule's cache identity —
// the form the simulate fast path prices. Ring schedules and Wrht plans emit
// classes directly without materializing per-node transfers; the remaining
// algorithms build the compact form once and fingerprint it. With a session
// the schedule is cache-owned; without one the caller owns it.
func buildClassSchedule(cfg Config, alg Algorithm, elems int, sess *session) (*collective.ClassSchedule, *core.Plan, exp.ScheduleKey, error) {
	key := exp.ScheduleKey{Algorithm: schedName(alg), N: cfg.Nodes, Elems: elems}
	var build func() (*collective.ClassSchedule, error)
	var plan *core.Plan
	switch alg {
	case AlgERing, AlgORing, AlgORingStriped:
		build = func() (*collective.ClassSchedule, error) {
			return collective.RingAllReduceClassed(cfg.Nodes, elems)
		}
	case AlgRD:
		build = func() (*collective.ClassSchedule, error) {
			return classesOf(collective.RecursiveDoubling(cfg.Nodes, elems))
		}
	case AlgHD:
		build = func() (*collective.ClassSchedule, error) {
			return classesOf(collective.HalvingDoubling(cfg.Nodes, elems))
		}
	case AlgBinomial:
		build = func() (*collective.ClassSchedule, error) {
			return classesOf(collective.BinomialTree(cfg.Nodes, elems))
		}
	case AlgWrht, AlgWrhtUnstriped, AlgWrhtPipelined:
		var err error
		plan, err = sess.buildPlan(cfg.Nodes, cfg.Optical.Wavelengths, wrhtOptions(cfg, alg))
		if err != nil {
			return nil, nil, key, err
		}
		key.Sig = plan.Sig()
		if alg == AlgWrhtPipelined {
			key.Chunks = pipelineChunks(cfg)
			build = func() (*collective.ClassSchedule, error) {
				return classesOf(plan.PipelinedSchedule(elems, pipelineChunks(cfg)))
			}
		} else {
			build = func() (*collective.ClassSchedule, error) {
				return plan.ClassSchedule(elems)
			}
		}
	default:
		return nil, nil, key, fmt.Errorf("wrht: unknown algorithm %q", alg)
	}
	if rec := sess.recorder(); rec != nil {
		// Wrap the build so certificate outcomes are recorded exactly once
		// per distinct schedule (cache hits re-serve the same build).
		inner := build
		build = func() (*collective.ClassSchedule, error) {
			cs, err := inner()
			if err == nil {
				cert, mat, dem := cs.CertStats()
				rec.Add("collective.schedules.built", 1)
				rec.Add("collective.steps.certified", int64(cert))
				rec.Add("collective.steps.materialized", int64(mat))
				rec.Add("collective.certificate.demotions", int64(dem))
			}
			return cs, err
		}
	}
	cls, err := sess.schedule(key, build)
	if err != nil {
		return nil, nil, key, err
	}
	return cls, plan, key, nil
}

// compactOf converts a boxed schedule construction result to columnar form.
func compactOf(s *collective.Schedule, err error) (*collective.CompactSchedule, error) {
	if err != nil {
		return nil, err
	}
	return s.Compact(), nil
}

// classesOf fingerprints a boxed schedule construction result into classed
// form (via a transient compact schedule that goes back to the pool).
func classesOf(s *collective.Schedule, err error) (*collective.ClassSchedule, error) {
	if err != nil {
		return nil, err
	}
	cs := s.Compact()
	cls := cs.Classes()
	cs.Release()
	return cls, nil
}

// buildSchedule constructs the boxed schedule (and optional Wrht plan) for
// alg — the historical path, kept for schedule inspection and verification
// surfaces (ScheduleOutline, VerifyAlgorithm) and as the old-path reference
// the golden equality tests compare the compact fast path against.
func buildSchedule(cfg Config, alg Algorithm, elems int, build planBuilder) (*collective.Schedule, *core.Plan, error) {
	switch alg {
	case AlgERing, AlgORing, AlgORingStriped:
		s, err := collective.RingAllReduce(cfg.Nodes, elems)
		return s, nil, err
	case AlgRD:
		s, err := collective.RecursiveDoubling(cfg.Nodes, elems)
		return s, nil, err
	case AlgHD:
		s, err := collective.HalvingDoubling(cfg.Nodes, elems)
		return s, nil, err
	case AlgBinomial:
		s, err := collective.BinomialTree(cfg.Nodes, elems)
		return s, nil, err
	case AlgWrht, AlgWrhtUnstriped, AlgWrhtPipelined:
		plan, err := build(cfg.Nodes, cfg.Optical.Wavelengths, wrhtOptions(cfg, alg))
		if err != nil {
			return nil, nil, err
		}
		if alg == AlgWrhtPipelined {
			s, err := plan.PipelinedSchedule(elems, pipelineChunks(cfg))
			return s, plan, err
		}
		s, err := plan.Schedule(elems)
		return s, plan, err
	default:
		return nil, nil, fmt.Errorf("wrht: unknown algorithm %q", alg)
	}
}

// isElectrical reports whether the algorithm runs on the electrical substrate.
func isElectrical(alg Algorithm) bool {
	switch alg {
	case AlgERing, AlgRD, AlgHD, AlgBinomial:
		return true
	default:
		return false
	}
}

// CommunicationTime simulates one all-reduce of `bytes` bytes under alg.
func CommunicationTime(cfg Config, alg Algorithm, bytes int64) (Result, error) {
	res, cls, err := communicationTime(cfg, alg, bytes, nil)
	if cls != nil {
		cls.Release() // session-free: the transient schedule is ours to recycle
	}
	return res, err
}

// communicationTime is CommunicationTime on the classed fast path — the
// schedule is built (or fingerprinted) in symmetry-aware classed form and
// priced per equivalence class — with the session supplying the
// plan/schedule/simulation caches (nil = uncached). It also returns the
// priced classed schedule so callers like EnergyEstimate can account
// aggregate costs without building the schedule a second time; the schedule
// is cache-owned when a session is present and caller-owned (releasable)
// otherwise.
func communicationTime(cfg Config, alg Algorithm, bytes int64, sess *session) (Result, *collective.ClassSchedule, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	if bytes <= 0 {
		return Result{}, nil, fmt.Errorf("wrht: non-positive buffer size %d", bytes)
	}
	elems := int((bytes + int64(cfg.BytesPerElem) - 1) / int64(cfg.BytesPerElem))
	cls, plan, key, err := buildClassSchedule(cfg, alg, elems, sess)
	if err != nil {
		return Result{}, nil, err
	}
	out := Result{Algorithm: alg, Steps: cls.NumSteps()}
	simBytes := int64(elems) * int64(cfg.BytesPerElem)

	if isElectrical(alg) {
		res, err := sess.simElectrical(key, cls, runner.ElectricalOptions{
			Params:       cfg.Electrical,
			BytesPerElem: cfg.BytesPerElem,
		})
		if err != nil {
			return Result{}, nil, err
		}
		out.Substrate = res.Substrate
		out.Seconds = res.TotalSec
		switch alg {
		case AlgERing:
			out.PredictedSeconds = model.ERing(cfg.Nodes, simBytes, cfg.Electrical)
		case AlgRD:
			out.PredictedSeconds = model.RD(cfg.Nodes, simBytes, cfg.Electrical)
		case AlgHD:
			out.PredictedSeconds = model.HD(cfg.Nodes, simBytes, cfg.Electrical)
		case AlgBinomial:
			out.PredictedSeconds = model.Binomial(cfg.Nodes, simBytes, cfg.Electrical)
		}
		return out, cls, nil
	}

	opts := runner.DefaultOpticalOptions()
	opts.Params = cfg.Optical
	opts.BytesPerElem = cfg.BytesPerElem
	opts.Assigner = wdm.FirstFit
	if alg == AlgORingStriped {
		opts.DefaultWidth = cfg.Optical.Wavelengths
	}
	res, err := sess.simOptical(key, cls, opts)
	if err != nil {
		return Result{}, nil, err
	}
	out.Substrate = res.Substrate
	out.Seconds = res.TotalSec
	out.MaxWavelengths = res.MaxWavelengths
	switch alg {
	case AlgORing:
		out.PredictedSeconds = model.ORing(cfg.Nodes, simBytes, cfg.Optical)
	case AlgORingStriped:
		out.PredictedSeconds = model.ORingStriped(cfg.Nodes, simBytes, cfg.Optical)
	case AlgWrht, AlgWrhtUnstriped:
		out.PredictedSeconds = model.Wrht(plan, simBytes, cfg.Optical)
	case AlgWrhtPipelined:
		out.PredictedSeconds = model.WrhtPipelined(plan, simBytes, cfg.Optical, pipelineChunks(cfg))
	}

	return out, cls, nil
}

// Compare prices several algorithms on the same buffer, sharing one session
// so algorithms that lower to the same schedule (E-Ring and O-Ring both ride
// the ring schedule) build it once.
func Compare(cfg Config, algs []Algorithm, bytes int64) ([]Result, error) {
	return NewSweepSession().Compare(cfg, algs, bytes)
}

// VerifyAlgorithm executes the algorithm's schedule on real buffers with
// deterministic inputs and confirms every node ends with the exact
// elementwise sum — the correctness oracle behind every timing claim. Use a
// small elems (e.g. 64) at large node counts; cost is O(N² · elems) for
// tree/all-to-all schedules.
func VerifyAlgorithm(cfg Config, alg Algorithm, elems int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s, _, err := buildSchedule(cfg, alg, elems, core.BuildPlan)
	if err != nil {
		return err
	}
	return collective.VerifyAllReduce(s)
}

// PlanSummary describes the Wrht plan the configuration produces.
type PlanSummary struct {
	GroupSize     int
	Steps         int
	TreeLevels    int
	A2AReps       int
	TreeStripe    int
	A2AStripe     int
	StepDemands   []int
	StepsUpperBnd int
	Description   string
}

// Plan returns the Wrht plan summary for the configuration.
func Plan(cfg Config) (PlanSummary, error) {
	if err := cfg.Validate(); err != nil {
		return PlanSummary{}, err
	}
	p, err := core.BuildPlan(cfg.Nodes, cfg.Optical.Wavelengths, wrhtOptions(cfg, AlgWrht))
	if err != nil {
		return PlanSummary{}, err
	}
	if err := p.CheckInvariants(); err != nil {
		return PlanSummary{}, err
	}
	return PlanSummary{
		GroupSize:     p.M,
		Steps:         p.NumSteps(),
		TreeLevels:    len(p.ReduceLevels),
		A2AReps:       len(p.A2AReps),
		TreeStripe:    p.TreeStripe,
		A2AStripe:     p.A2AStripe,
		StepDemands:   p.WavelengthDemands(),
		StepsUpperBnd: p.StepsUpperBound(),
		Description:   p.String(),
	}, nil
}

// IterationReport is a data-parallel training-iteration simulation outcome.
type IterationReport struct {
	Model             string
	Algorithm         Algorithm
	IterationSec      float64
	ComputeSec        float64
	CommSec           float64
	ExposedCommSec    float64
	CommShare         float64
	ScalingEfficiency float64
	Buckets           int
}

// TrainingIteration simulates one bucketed-overlap DDP iteration of the named
// catalog model with gradients all-reduced by alg (analytic comm model).
func TrainingIteration(cfg Config, alg Algorithm, modelName string, bucketCapBytes int64) (IterationReport, error) {
	if err := cfg.Validate(); err != nil {
		return IterationReport{}, err
	}
	m, err := dnn.ByName(modelName)
	if err != nil {
		return IterationReport{}, err
	}
	timer, err := commTimer(cfg, alg, core.BuildPlan)
	if err != nil {
		return IterationReport{}, err
	}
	res, err := trace.SimulateIteration(m, trace.DefaultCompute(m), bucketCapBytes, cfg.BytesPerElem, timer)
	if err != nil {
		return IterationReport{}, err
	}
	return IterationReport{
		Model:             m.Name,
		Algorithm:         alg,
		IterationSec:      res.IterationSec,
		ComputeSec:        res.ComputeSec,
		CommSec:           res.CommSec,
		ExposedCommSec:    res.ExposedCommSec,
		CommShare:         res.CommShare,
		ScalingEfficiency: res.ScalingEfficiency,
		Buckets:           res.Buckets,
	}, nil
}

// commTimer builds an analytic per-bucket timer for the algorithm (fast
// enough to call once per bucket per iteration). Every Algorithm has an arm:
// the electrical trees and rings use their closed forms, the Wrht variants a
// plan built once and priced per bucket (the pipelined variant through the
// documented round-splitting approximation in core.PredictPipelinedTime).
func commTimer(cfg Config, alg Algorithm, build planBuilder) (trace.CommTimer, error) {
	switch alg {
	case AlgERing:
		return func(b int64) float64 { return model.ERing(cfg.Nodes, b, cfg.Electrical) }, nil
	case AlgRD:
		return func(b int64) float64 { return model.RD(cfg.Nodes, b, cfg.Electrical) }, nil
	case AlgHD:
		return func(b int64) float64 { return model.HD(cfg.Nodes, b, cfg.Electrical) }, nil
	case AlgBinomial:
		return func(b int64) float64 { return model.Binomial(cfg.Nodes, b, cfg.Electrical) }, nil
	case AlgORing:
		return func(b int64) float64 { return model.ORing(cfg.Nodes, b, cfg.Optical) }, nil
	case AlgORingStriped:
		return func(b int64) float64 { return model.ORingStriped(cfg.Nodes, b, cfg.Optical) }, nil
	case AlgWrht, AlgWrhtUnstriped, AlgWrhtPipelined:
		plan, err := build(cfg.Nodes, cfg.Optical.Wavelengths, wrhtOptions(cfg, alg))
		if err != nil {
			return nil, err
		}
		if alg == AlgWrhtPipelined {
			chunks := pipelineChunks(cfg)
			if chunks < 1 {
				// Mirror CommunicationTime, which rejects the same value in
				// PipelinedSchedule, instead of silently pricing unpipelined.
				return nil, fmt.Errorf("wrht: pipeline chunks %d", chunks)
			}
			return func(b int64) float64 { return model.WrhtPipelined(plan, b, cfg.Optical, chunks) }, nil
		}
		return func(b int64) float64 { return model.Wrht(plan, b, cfg.Optical) }, nil
	default:
		return nil, fmt.Errorf("wrht: no analytic timer for algorithm %q", alg)
	}
}
