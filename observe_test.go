package wrht

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func observeTestJobs() []JobSpec {
	return []JobSpec{
		{Name: "a", Model: "AlexNet", MaxWavelengths: 8},
		{Name: "b", Model: "AlexNet", ArrivalSec: 1e-4, MaxWavelengths: 8, Iterations: 2},
		{Name: "c", Model: "VGG16", ArrivalSec: 2e-3},
	}
}

// TestObservedSessionBitIdentical: enabling the flight recorder changes no
// priced number — CommunicationTime and SimulateFabric results on an
// observed session are deep-equal to an unobserved one.
func TestObservedSessionBitIdentical(t *testing.T) {
	plain := NewSweepSession()
	observed := NewSweepSession()
	observed.Observe()

	for _, nodes := range []int{16, 64} {
		cfg := DefaultConfig(nodes)
		for _, alg := range PaperAlgorithms() {
			want, err1 := plain.CommunicationTime(cfg, alg, 4<<20)
			got, err2 := observed.CommunicationTime(cfg, alg, 4<<20)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("N=%d %s: error divergence: plain=%v observed=%v", nodes, alg, err1, err2)
			}
			if err1 == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("N=%d %s: observed pricing diverges\n got %+v\nwant %+v", nodes, alg, got, want)
			}
		}
	}

	cfg := DefaultConfig(64)
	for _, pol := range FabricPolicies() {
		want, err1 := plain.SimulateFabric(cfg, observeTestJobs(), pol)
		got, err2 := observed.SimulateFabric(cfg, observeTestJobs(), pol)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: fabric error divergence: plain=%v observed=%v", pol.Kind, err1, err2)
		}
		if err1 == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: observed fabric result diverges", pol.Kind)
		}
	}
}

// observedSweepTrace runs a fixed mixed grid (communication cells plus a
// fabric mix) on a fresh observed session at the given parallelism and
// returns the exported trace bytes.
func observedSweepTrace(t *testing.T, parallelism int) []byte {
	t.Helper()
	ss := NewSweepSession()
	ob := ss.Observe()
	res, err := ss.RunSweep(SweepSpec{
		Base:         DefaultConfig(16),
		Wavelengths:  []int{8, 16},
		MessageBytes: []int64{1 << 20, 4 << 20},
		Algorithms:   []Algorithm{AlgWrht, AlgHD, AlgERing},
		Parallelism:  parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	fres, err := ss.RunSweep(SweepSpec{
		Base:        DefaultConfig(16),
		FabricMixes: []FabricMix{{Name: "mix", Jobs: observeTestJobs()}},
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fres.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceBytesDeterministicAcrossParallelism: the exported Perfetto trace
// is a pure function of the work priced, not of the worker interleaving —
// serial and 8-way sweeps of the same grid export identical bytes.
func TestTraceBytesDeterministicAcrossParallelism(t *testing.T) {
	serial := observedSweepTrace(t, 1)
	for _, par := range []int{4, 8} {
		if got := observedSweepTrace(t, par); !bytes.Equal(got, serial) {
			t.Fatalf("trace bytes differ between Parallelism=1 and Parallelism=%d", par)
		}
	}
	if len(serial) < 1000 {
		t.Fatalf("trace suspiciously small (%d bytes) — did the sweep record anything?", len(serial))
	}
}

// TestCacheStatsFabricRuntime: the fabric layer's runtime-curve cache is
// surfaced through CacheStats — a policy comparison prices each distinct
// (tenant, width) curve point once and serves every later policy from cache.
func TestCacheStatsFabricRuntime(t *testing.T) {
	ss := NewSweepSession()
	if _, err := ss.CompareFabricPolicies(DefaultConfig(64), observeTestJobs(), FabricPolicies()); err != nil {
		t.Fatal(err)
	}
	st := ss.Stats()
	if st.FabricRuntimeBuilds == 0 {
		t.Fatal("FabricRuntimeBuilds = 0 after a fabric comparison")
	}
	if st.FabricRuntimeHits == 0 {
		t.Fatal("FabricRuntimeHits = 0 — policies are not sharing the runtime cache")
	}
	// A repeated comparison is served entirely from cache.
	builds := st.FabricRuntimeBuilds
	if _, err := ss.CompareFabricPolicies(DefaultConfig(64), observeTestJobs(), FabricPolicies()); err != nil {
		t.Fatal(err)
	}
	st2 := ss.Stats()
	if st2.FabricRuntimeBuilds != builds {
		t.Fatalf("second comparison rebuilt runtime curves: %d → %d builds", builds, st2.FabricRuntimeBuilds)
	}
	if st2.FabricRuntimeHits <= st.FabricRuntimeHits {
		t.Fatal("second comparison did not hit the runtime cache")
	}
}

// TestMetricsSnapshotRenders: the snapshot renders the same sections and
// cell values in markdown and CSV, carries the pricing counters an observed
// run must produce, and degrades to cache-stats-only on unobserved sessions.
func TestMetricsSnapshotRenders(t *testing.T) {
	ss := NewSweepSession()
	ss.Observe()
	if _, err := ss.CommunicationTime(DefaultConfig(16), AlgWrht, 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.SimulateFabric(DefaultConfig(64), observeTestJobs(), FabricPolicy{Kind: FabricElastic}); err != nil {
		t.Fatal(err)
	}
	snap := ss.Snapshot()
	counters := map[string]float64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"collective.schedules.built", "pricer.optical.runs",
		"fabric.sims", "fabric.events.finish",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s missing or zero in snapshot (have %v)", name, counters)
		}
	}
	if len(snap.Wavelengths) == 0 {
		t.Error("snapshot has no wavelength occupancy rows after a fabric run")
	}
	if snap.Spans == 0 || snap.Instants == 0 {
		t.Errorf("snapshot stream counts empty: %d spans, %d instants", snap.Spans, snap.Instants)
	}

	md, csv := snap.Markdown(), snap.CSV()
	for _, section := range []string{"Cache layers", "Counters", "Gauges", "Wavelength occupancy"} {
		if !strings.Contains(md, section) {
			t.Errorf("markdown snapshot missing %q section:\n%s", section, md)
		}
		if !strings.Contains(csv, section) {
			t.Errorf("CSV snapshot missing %q section", section)
		}
	}
	if !strings.Contains(md, "fabric.sims") || !strings.Contains(csv, "fabric.sims") {
		t.Error("snapshot formats disagree on fabric.sims")
	}

	// Unobserved sessions still snapshot (cache stats only).
	bare := NewSweepSession()
	if _, err := bare.CommunicationTime(DefaultConfig(16), AlgWrht, 1<<20); err != nil {
		t.Fatal(err)
	}
	bsnap := bare.Snapshot()
	if len(bsnap.Counters) != 0 || bsnap.Spans != 0 {
		t.Fatalf("unobserved snapshot carries recorder state: %+v", bsnap)
	}
	if bsnap.Cache.ScheduleBuilds == 0 {
		t.Fatal("unobserved snapshot missing cache stats")
	}
	if out := bsnap.Markdown(); !strings.Contains(out, "Cache layers") {
		t.Fatalf("unobserved snapshot markdown broken:\n%s", out)
	}
}

// TestMetricsSnapshotFleetSolverCounters pins the observability contract of
// the incremental elastic solver and the fleet layer: an observed fleet
// simulation must surface the solver work counters (fabric.solver.*) and the
// fleet counters in MetricsSnapshot, so dashboards and the CI smoke grep can
// rely on the names.
func TestMetricsSnapshotFleetSolverCounters(t *testing.T) {
	ss := NewSweepSession()
	ss.Observe()
	jobs := fleetTestTrace(t, 40)
	res, err := ss.SimulateFleet(DefaultConfig(32), fleetTestFabrics(), fleetTestShapes(), jobs, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverSolves == 0 {
		t.Fatal("elastic fleet run reported zero solver invocations")
	}

	snap := ss.Snapshot()
	counters := map[string]float64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	// Guaranteed non-zero after an elastic fleet run of this size.
	for _, name := range []string{
		"fabric.solver.solves", "fabric.solver.tiers_touched",
		"fabric.solver.jobs_repriced", "fabric.solver.curve_builds",
		"fabric.solver.curve_hits",
		"fleet.sims", "fleet.jobs", "fleet.engine.events",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s missing or zero after an observed fleet run", name)
		}
	}
	// Registered even when zero — presence is the contract.
	for _, name := range []string{"fabric.solver.tiers_skipped", "fleet.migrations"} {
		if _, ok := counters[name]; !ok {
			t.Errorf("counter %s not registered in snapshot", name)
		}
	}
	// The recorder's counters must agree with the result's own accounting.
	if got, want := counters["fabric.solver.solves"], float64(res.SolverSolves); got != want {
		t.Errorf("fabric.solver.solves = %v, result reports %v", got, want)
	}
	if got, want := counters["fleet.jobs"], float64(len(jobs)); got != want {
		t.Errorf("fleet.jobs = %v, submitted %v", got, want)
	}
}

// TestInspectScheduleClasses: the public certificate inspector agrees with
// the schedule's structure — the paper algorithms at N=1024 certify their
// symmetric steps, and the partition invariants hold everywhere.
func TestInspectScheduleClasses(t *testing.T) {
	cfg := DefaultConfig(16)
	st, err := InspectScheduleClasses(cfg, AlgWrht, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps == 0 || st.Transfers == 0 {
		t.Fatalf("empty inspection: %+v", st)
	}
	if st.CertifiedSteps+st.MaterializedSteps != st.Steps {
		t.Fatalf("certified %d + materialized %d != steps %d",
			st.CertifiedSteps, st.MaterializedSteps, st.Steps)
	}
	if st.DemotedSteps > st.MaterializedSteps {
		t.Fatalf("demoted %d exceeds materialized %d", st.DemotedSteps, st.MaterializedSteps)
	}

	// The ring at N=1024 is fully certified (one class per step).
	rst, err := InspectScheduleClasses(DefaultConfig(1024), AlgORing, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rst.CertifiedSteps != rst.Steps || rst.MaterializedSteps != 0 {
		t.Fatalf("O-Ring at N=1024 not fully certified: %+v", rst)
	}

	if _, err := InspectScheduleClasses(cfg, AlgWrht, 0); err == nil {
		t.Fatal("non-positive size accepted")
	}
}
