package wrht_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wrht/internal/obs"
	"wrht/internal/serve"
)

// BenchmarkServeOverload prices the serving layer itself: one op is a full
// closed-loop overload burst of unique (always-cold) sweep requests against
// a server with a single sweep worker and a one-slot queue, through the
// complete pipeline — decode, admission, degradation sampling, coalescing,
// session shard, simulation, encode. The custom metrics carry the overload
// contracts into the bench report: p99 latency of completed requests, p99
// latency of 429 sheds (the shed path must stay in microseconds–
// milliseconds while workers grind), completed-request throughput, and the
// shed fraction (which must be > 0 at these queue depths, or the burst
// never saturated admission and the numbers measure nothing).
func BenchmarkServeOverload(b *testing.B) {
	requests, conc := 96, 12
	if testing.Short() {
		requests, conc = 36, 12
	}
	// The sub-benchmark name carries the burst scale, so the committed
	// allocation ceilings and wall-time gates never compare across scales.
	b.Run(fmt.Sprintf("req%d/c%d", requests, conc), func(b *testing.B) {
		benchServeOverload(b, requests, conc)
	})
}

func benchServeOverload(b *testing.B, requests, conc int) {
	srv := serve.New(serve.Config{
		Shards: 2,
		Sweep:  serve.ClassLimits{Workers: 1, Queue: 1, Deadline: 30 * time.Second},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: time.Minute}
	url := ts.URL + "/v1/sweep"

	var shed, ok, errors atomic.Int64
	okHist, shedHist := obs.NewHistogram(), obs.NewHistogram()
	var seq atomic.Int64 // unique across ops: every request stays cold

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(requests) {
					// Heavy enough (hundreds of ms cold) that in-flight work
					// genuinely overlaps arrivals; unique MessageBytes keep
					// every request cold and un-coalescable.
					n := seq.Add(1)
					body := fmt.Sprintf(
						`{"Spec": {"Nodes": [1024, 2048], "MessageBytes": [%d, %d], "Algorithms": ["wrht", "e-ring", "o-ring", "rd", "hd"]}}`,
						64<<20+n*4096, 128<<20+n*4096)
					t0 := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						errors.Add(1)
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					elapsed := time.Since(t0).Seconds()
					switch resp.StatusCode {
					case http.StatusOK:
						ok.Add(1)
						okHist.Observe(elapsed)
					case http.StatusTooManyRequests:
						shed.Add(1)
						shedHist.Observe(elapsed)
					default:
						errors.Add(1)
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if _, err := srv.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}

	if ok.Load() == 0 || shed.Load() == 0 {
		b.Fatalf("overload burst must both complete and shed work (ok %d, shed %d, errors %d): the contract numbers are vacuous otherwise",
			ok.Load(), shed.Load(), errors.Load())
	}
	if errors.Load() > 0 {
		b.Fatalf("%d requests failed outside the 200/429 contract", errors.Load())
	}
	b.ReportMetric(okHist.Stat("ok").P99*1e3, "ok-p99-ms")
	b.ReportMetric(shedHist.Stat("shed").P99*1e3, "shed-p99-ms")
	b.ReportMetric(float64(ok.Load())/b.Elapsed().Seconds(), "qps")
	b.ReportMetric(float64(shed.Load())/float64(ok.Load()+shed.Load()), "shed-frac")
}
