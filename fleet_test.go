package wrht

import (
	"reflect"
	"strings"
	"testing"
)

func fleetTestFabrics() []FleetFabricSpec {
	return []FleetFabricSpec{
		{Name: "big", Nodes: 16, Wavelengths: 16, ReconfigDelaySec: 2e-6, MigrationCostSec: 0.01},
		{Name: "mid", Nodes: 16, Wavelengths: 8, ReconfigDelaySec: 2e-6, MigrationCostSec: 0.005},
		{Name: "small", Nodes: 8, Wavelengths: 4, ReconfigDelaySec: 5e-6, MigrationCostSec: 0.002},
	}
}

func fleetTestShapes() []FleetShape {
	return []FleetShape{
		{Model: "AlexNet"},
		{Model: "ResNet50"},
		{Bytes: 1 << 20},
	}
}

func fleetTestTrace(t *testing.T, n int) []FleetJob {
	t.Helper()
	jobs, err := GenerateFleetTrace(FleetTraceSpec{
		Kind: "poisson", Jobs: n, Seed: 9, MeanGapSec: 2e-3,
		NumShapes: 3, NumFabrics: 3, MaxWidth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestSimulateFleetDeterministic pins that a fleet co-simulation is
// reproducible and structurally sane across placement policies.
func TestSimulateFleetDeterministic(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := fleetTestTrace(t, 40)
	for _, placement := range []string{FleetLeastLoaded, FleetBestFit, FleetPriorityAware} {
		opt := FleetOptions{Placement: placement, Lite: true}
		a, err := SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), jobs, opt)
		if err != nil {
			t.Fatalf("%s: %v", placement, err)
		}
		b, err := SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), jobs, opt)
		if err != nil {
			t.Fatalf("%s: %v", placement, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: fleet result not deterministic", placement)
		}
		if a.Completed+a.Rejected != a.Jobs {
			t.Fatalf("%s: %d completed + %d rejected != %d jobs", placement, a.Completed, a.Rejected, a.Jobs)
		}
		placed := 0
		for _, f := range a.PerFabric {
			placed += f.Placed
		}
		if placed+a.Unplaceable != a.Jobs {
			t.Fatalf("%s: %d placed + %d unplaceable != %d jobs", placement, placed, a.Unplaceable, a.Jobs)
		}
		if a.SolverSolves == 0 || a.CurveBuilds == 0 {
			t.Fatalf("%s: solver counters empty: %+v", placement, a)
		}
		if a.CurveHits == 0 {
			t.Fatalf("%s: 40 jobs over 3 shapes never hit the shape curve cache", placement)
		}
	}
}

// TestSimulateFleetSessionCurveSharing pins the session-level promise:
// fabrics with equal ring sizes share runtime-curve cache entries, and a
// second run on the same session prices fully warm.
func TestSimulateFleetSessionCurveSharing(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := fleetTestTrace(t, 40)
	ss := NewSweepSession()
	if _, err := ss.SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), jobs, FleetOptions{Lite: true}); err != nil {
		t.Fatal(err)
	}
	first := ss.Stats()
	if first.FabricRuntimeBuilds == 0 {
		t.Fatal("first run built no runtime curves")
	}
	if _, err := ss.SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), jobs, FleetOptions{Lite: true}); err != nil {
		t.Fatal(err)
	}
	second := ss.Stats()
	if second.FabricRuntimeBuilds != first.FabricRuntimeBuilds {
		t.Fatalf("second identical run built %d new curves",
			second.FabricRuntimeBuilds-first.FabricRuntimeBuilds)
	}
	if second.FabricRuntimeHits <= first.FabricRuntimeHits {
		t.Fatal("second identical run hit no cached curves")
	}
}

// TestSimulateFleetValidation covers the public-layer rejections on top of
// internal/fleet's.
func TestSimulateFleetValidation(t *testing.T) {
	cfg := fabricTestConfig()
	fabs := fleetTestFabrics()
	shapes := fleetTestShapes()
	jobs := fleetTestTrace(t, 5)
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"empty fleet", func() error {
			_, err := SimulateFleet(cfg, nil, shapes, jobs, FleetOptions{})
			return err
		}, "empty fleet"},
		{"no shapes", func() error {
			_, err := SimulateFleet(cfg, fabs, nil, jobs, FleetOptions{})
			return err
		}, "no workload shapes"},
		{"bad placement", func() error {
			_, err := SimulateFleet(cfg, fabs, shapes, jobs, FleetOptions{Placement: "round-robin"})
			return err
		}, "placement"},
		{"bad policy", func() error {
			_, err := SimulateFleet(cfg, fabs, shapes, jobs, FleetOptions{Policy: FabricPolicy{Kind: "torus"}})
			return err
		}, "unknown fabric policy"},
		{"electrical shape", func() error {
			bad := []FleetShape{{Bytes: 1 << 20, Algorithm: AlgERing}}
			_, err := SimulateFleet(cfg, fabs, bad, jobs, FleetOptions{})
			return err
		}, "electrical"},
		{"bad shape index", func() error {
			bad := append([]FleetJob(nil), jobs...)
			bad[0].Shape = 99
			_, err := SimulateFleet(cfg, fabs, shapes, bad, FleetOptions{})
			return err
		}, "shape 99"},
		{"bad budget", func() error {
			badFabs := append([]FleetFabricSpec(nil), fabs...)
			badFabs[1].Wavelengths = -4
			_, err := SimulateFleet(cfg, badFabs, shapes, jobs, FleetOptions{})
			return err
		}, "wavelength budget"},
		{"negative migration", func() error {
			badFabs := append([]FleetFabricSpec(nil), fabs...)
			badFabs[2].MigrationCostSec = -1
			_, err := SimulateFleet(cfg, badFabs, shapes, jobs, FleetOptions{})
			return err
		}, "migration cost"},
		{"bad trace kind", func() error {
			_, err := GenerateFleetTrace(FleetTraceSpec{Kind: "uniform", Jobs: 1, MeanGapSec: 1, NumShapes: 1, NumFabrics: 1})
			return err
		}, "trace kind"},
		{"bad trace gap", func() error {
			_, err := GenerateFleetTrace(FleetTraceSpec{Jobs: 1, MeanGapSec: -1, NumShapes: 1, NumFabrics: 1})
			return err
		}, "mean gap"},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestSimulateFleetSoloMatchesFabric is the bridge invariant one layer up:
// a single job on a one-fabric fleet reproduces SimulateFabric's numbers
// for the same tenant.
func TestSimulateFleetSoloMatchesFabric(t *testing.T) {
	cfg := fabricTestConfig()
	fabs := []FleetFabricSpec{{Name: "only", Nodes: cfg.Nodes, Wavelengths: cfg.Optical.Wavelengths, ReconfigDelaySec: 2e-6}}
	shapes := []FleetShape{{Bytes: 1 << 20}}
	res, err := SimulateFleet(cfg, fabs, shapes,
		[]FleetJob{{Name: "solo", Affinity: -1}}, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SimulateFabric(cfg, []JobSpec{{Name: "solo", Bytes: 1 << 20}},
		FabricPolicy{Kind: FabricElastic, ReconfigDelaySec: 2e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec != ref.MakespanSec {
		t.Fatalf("fleet solo makespan %v != fabric %v", res.MakespanSec, ref.MakespanSec)
	}
	if res.Completed != 1 || res.Migrations != 0 {
		t.Fatalf("fleet solo outcome: %+v", res)
	}
}
