package wrht

import (
	"reflect"
	"testing"
)

// sweepTestSpec exercises every communication axis at test-friendly scales,
// including a group size that is infeasible at both wavelength budgets so
// error capture is part of what determinism is asserted over.
func sweepTestSpec() SweepSpec {
	return SweepSpec{
		Nodes:       []int{16, 24},
		Wavelengths: []int{8, 16},
		Models:      []string{"AlexNet", "ResNet50"},
		Algorithms:  []Algorithm{AlgWrht, AlgORing, AlgERing},
		GroupSizes:  []int{0, 3, 129},
	}
}

// TestRunSweepDeterministicAcrossParallelism is the engine's golden test:
// the cells (values, order, and captured errors) and the plan-cache counters
// of a parallel run must be identical to the serial run's.
func TestRunSweepDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepTestSpec()
	serial.Parallelism = 1
	parallel := sweepTestSpec()
	parallel.Parallelism = 8

	r1, err := RunSweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSweep(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Cells) != 2*2*2*3*3 {
		t.Fatalf("%d cells", len(r1.Cells))
	}
	if !reflect.DeepEqual(r1.Cells, r2.Cells) {
		for i := range r1.Cells {
			if !reflect.DeepEqual(r1.Cells[i], r2.Cells[i]) {
				t.Fatalf("cell %d differs:\nserial:   %+v\nparallel: %+v",
					i, r1.Cells[i], r2.Cells[i])
			}
		}
		t.Fatal("cells differ")
	}
	if r1.PlanBuilds != r2.PlanBuilds || r1.PlanHits != r2.PlanHits {
		t.Fatalf("cache counters differ: serial (%d builds, %d hits), parallel (%d builds, %d hits)",
			r1.PlanBuilds, r1.PlanHits, r2.PlanBuilds, r2.PlanHits)
	}
	if r1.Failed == 0 {
		t.Fatal("expected the infeasible group size to fail some points")
	}
	failed := 0
	for i, c := range r1.Cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.Err != nil {
			failed++
			continue
		}
		if c.Seconds <= 0 || c.Comm == nil {
			t.Fatalf("cell %d: %+v", i, c)
		}
	}
	if failed != r1.Failed {
		t.Fatalf("Failed = %d, cells with Err = %d", r1.Failed, failed)
	}
	// The infeasible m=129 must fail exactly the Wrht points (⌊m/2⌋ = 64
	// exceeds both budgets) and leave the electrical/ring points alone.
	for _, c := range r1.Cells {
		wantErr := c.GroupSize == 129 && c.Algorithm == AlgWrht
		if (c.Err != nil) != wantErr {
			t.Fatalf("cell %d (%s m=%d): err = %v", c.Index, c.Algorithm, c.GroupSize, c.Err)
		}
	}
}

// TestRunSweepMatchesCommunicationTime pins the engine to the serial public
// path: same config, same algorithm, bit-identical seconds.
func TestRunSweepMatchesCommunicationTime(t *testing.T) {
	res, err := RunSweep(SweepSpec{
		Base:         DefaultConfig(16),
		Wavelengths:  []int{8, 16},
		MessageBytes: []int64{1 << 20},
		Algorithms:   []Algorithm{AlgWrht, AlgHD},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		cfg := DefaultConfig(16)
		cfg.Optical.Wavelengths = c.Wavelengths
		direct, err := CommunicationTime(cfg, c.Algorithm, c.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Seconds != c.Seconds {
			t.Fatalf("cell %d (%s w=%d): engine %.9g, direct %.9g",
				c.Index, c.Algorithm, c.Wavelengths, c.Seconds, direct.Seconds)
		}
		if !reflect.DeepEqual(*c.Comm, direct) {
			t.Fatalf("cell %d: result detail differs", c.Index)
		}
	}
}

func TestRunSweepPlanCacheIsShared(t *testing.T) {
	// 4 models × 1 node count × 1 budget through AlgWrht share one plan key:
	// exactly one build, three hits.
	res, err := RunSweep(SweepSpec{
		Nodes:  []int{24},
		Models: []string{"AlexNet", "VGG16", "ResNet50", "GoogLeNet"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.PlanBuilds != 1 || res.PlanHits != 3 {
		t.Fatalf("cache counters (%d builds, %d hits), want (1, 3)", res.PlanBuilds, res.PlanHits)
	}
}

func TestRunSweepFabricMode(t *testing.T) {
	cfg := fabricTestConfig()
	mix := FabricMix{Jobs: []JobSpec{
		{Name: "a", Bytes: 1 << 20},
		{Name: "b", Bytes: 4 << 20, ArrivalSec: 1e-4, Priority: 1},
		{Name: "c", Bytes: 2 << 20, ArrivalSec: 2e-4, MaxWavelengths: 4},
	}}
	res, err := RunSweep(SweepSpec{Base: cfg, FabricMixes: []FabricMix{mix}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(FabricPolicies()) {
		t.Fatalf("%d cells, want one per default policy", len(res.Cells))
	}
	direct, err := CompareFabricPolicies(cfg, mix.Jobs, FabricPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		if c.Fabric == nil || c.FabricMix != "mix0" {
			t.Fatalf("cell %d: %+v", i, c)
		}
		if c.Seconds != direct[i].MakespanSec {
			t.Fatalf("policy %s: engine makespan %.9g, direct %.9g",
				c.FabricPolicy, c.Seconds, direct[i].MakespanSec)
		}
	}
}

func TestRunSweepMultiRackMode(t *testing.T) {
	res, err := RunSweep(SweepSpec{
		Racks:        []int{2, 4},
		NodesPerRack: []int{8},
		MessageBytes: []int64{1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		direct, err := MultiRackTime(DefaultConfig(2), c.Racks, c.NodesPerRack, c.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if c.MultiRack == nil || c.Seconds != direct.TotalSec {
			t.Fatalf("racks %d: engine %.9g, direct %.9g", c.Racks, c.Seconds, direct.TotalSec)
		}
		if c.Nodes != c.Racks*c.NodesPerRack {
			t.Fatalf("cell worker count %d", c.Nodes)
		}
	}
	// The intra-rack plan goes through the shared cache: both rack counts
	// share one (nodesPerRack, wavelengths, options) key.
	if res.PlanBuilds != 1 || res.PlanHits != 1 {
		t.Fatalf("cache counters (%d builds, %d hits), want (1, 1)", res.PlanBuilds, res.PlanHits)
	}
}

func TestRunSweepSpecValidation(t *testing.T) {
	cases := map[string]SweepSpec{
		"no workload":       {Nodes: []int{16}},
		"two workload axes": {Nodes: []int{16}, Models: []string{"VGG16"}, MessageBytes: []int64{1}},
		"no nodes":          {Models: []string{"VGG16"}},
		"fabric plus multirack": {
			FabricMixes: []FabricMix{{}},
			Racks:       []int{2}, NodesPerRack: []int{8},
		},
		"fabric with comm axes": {
			Nodes:       []int{16},
			FabricMixes: []FabricMix{{}},
			Models:      []string{"VGG16"},
		},
		"fabric without mixes": {Nodes: []int{16}, FabricPolicies: FabricPolicies()},
		"multirack with nodes axis": {
			Nodes: []int{16}, Racks: []int{2}, NodesPerRack: []int{8},
			MessageBytes: []int64{1 << 20},
		},
		"multirack without workload": {Racks: []int{2}, NodesPerRack: []int{8}},
		"multirack without racks":    {NodesPerRack: []int{8}, MessageBytes: []int64{1 << 20}},
	}
	for name, spec := range cases {
		if _, err := RunSweep(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunSweepCapturesBadModel(t *testing.T) {
	res, err := RunSweep(SweepSpec{Nodes: []int{16}, Models: []string{"nope"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Cells[0].Err == nil {
		t.Fatalf("unknown model not captured per point: %+v", res.Cells[0])
	}
	if res.Err() == nil {
		t.Fatal("Err() nil with a failed cell")
	}
}

// TestRunSweepScheduleAndSimCaches: the schedule layer dedupes across
// algorithms that lower identically (E-Ring and O-Ring share the ring
// schedule), and the simulation layer runs each distinct configuration
// exactly once however often the grid revisits it.
func TestRunSweepScheduleAndSimCaches(t *testing.T) {
	res, err := RunSweep(SweepSpec{
		Nodes:      []int{16},
		Models:     []string{"AlexNet"},
		Algorithms: []Algorithm{AlgERing, AlgORing, AlgORingStriped},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// Three points, one underlying ring schedule: 1 build, 2 hits.
	if res.SchedBuilds != 1 || res.SchedHits != 2 {
		t.Fatalf("schedule cache counters (%d builds, %d hits), want (1, 2)",
			res.SchedBuilds, res.SchedHits)
	}
	// Three distinct substrate configurations: all simulate, none repeat.
	if res.SimRuns != 3 || res.SimHits != 0 {
		t.Fatalf("sim cache counters (%d runs, %d hits), want (3, 0)", res.SimRuns, res.SimHits)
	}
}
