module wrht

go 1.24
