package wrht_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"wrht"
)

// The fuzz harnesses below drive the three public input surfaces an
// untrusted caller (e.g. the serving layer) can reach — CommunicationTime
// configuration, FaultPlan, FleetTraceSpec — and check the robustness
// contract: every input either simulates successfully with a sane,
// deterministic result or is rejected with a validation error. No input may
// panic, and no input may hang (work must be bounded before simulation
// starts). Inputs are folded into a bounded envelope so the *valid* side of
// each iteration stays fast; the unbounded extremes that used to hang are
// pinned as explicit regression cases in TestAdversarialInputsRejected.

// clampInt folds v into [lo, hi] while preserving out-of-range sign cases:
// values far outside come back as their remainder, so negatives and zeros
// still reach validation.
func clampInt(v, lo, hi int) int {
	if v >= lo && v <= hi {
		return v
	}
	span := hi - lo + 1
	m := v % span
	if m < 0 {
		m += span
	}
	return lo + m
}

func FuzzCommunicationTime(f *testing.F) {
	algs := wrht.Algorithms()
	f.Add(64, 64, int64(1<<20), uint8(6), 4, 0, 0)     // wrht defaults
	f.Add(128, 32, int64(4<<20), uint8(0), 4, 0, 0)    // e-ring
	f.Add(2, 1, int64(1), uint8(4), 1, 0, 0)           // minimal optical
	f.Add(16, 64, int64(1<<16), uint8(8), 4, 0, 128)   // pipelined
	f.Add(16, 64, int64(1<<16), uint8(6), 5, 0, 0)     // odd group size
	f.Add(0, 0, int64(0), uint8(3), 0, -1, -1)         // all-invalid
	f.Add(64, 64, int64(1<<20), uint8(8), 4, 0, 1<<30) // chunks past cap
	f.Add(1024, 64, int64(-5), uint8(6), 4, 1<<30, 0)  // group past budget
	f.Fuzz(func(t *testing.T, nodes, wavelengths int, bytes int64, algIdx uint8, bytesPerElem, groupSize, chunks int) {
		// Bound the work of valid configurations, not their validity:
		// out-of-range values fold back into range (keeping sign cases),
		// so validation still sees negatives and zeros.
		nodes = clampInt(nodes, -2, 1024)
		wavelengths = clampInt(wavelengths, -2, 256)
		if bytes > 64<<20 {
			bytes %= 64 << 20
		}
		chunks = clampInt(chunks, -2, 1024)

		cfg := wrht.DefaultConfig(2)
		cfg.Nodes = nodes
		cfg.Optical.Wavelengths = wavelengths
		cfg.BytesPerElem = bytesPerElem
		cfg.WrhtGroupSize = groupSize
		cfg.PipelineChunks = chunks
		alg := algs[int(algIdx)%len(algs)]

		res, err := wrht.CommunicationTime(cfg, alg, bytes)
		if err != nil {
			return // rejected: that is a valid outcome, panics are not
		}
		if !(res.Seconds > 0) || math.IsInf(res.Seconds, 0) {
			t.Fatalf("accepted config produced non-positive time %v (cfg %+v alg %s bytes %d)",
				res.Seconds, cfg, alg, bytes)
		}
		if res.Steps < 1 {
			t.Fatalf("accepted config produced %d steps", res.Steps)
		}
		again, err := wrht.CommunicationTime(cfg, alg, bytes)
		if err != nil || again != res {
			t.Fatalf("non-deterministic: first %+v, second %+v (err %v)", res, again, err)
		}
	})
}

func FuzzFaultPlan(f *testing.F) {
	kinds := []string{
		wrht.FaultWavelengthDown, wrht.FaultWavelengthUp, wrht.FaultJob,
		wrht.FaultFabricDown, wrht.FaultFabricUp, "bogus",
	}
	f.Add(int64(1), 10.0, 2.0, 0.5, 0.0, 1, uint8(0), 0.5, 0, 1, 0, 0.0, 0.0)
	f.Add(int64(7), 5.0, 0.0, 0.0, 0.5, 0, uint8(2), 1.0, 0, 0, 3, 1e-3, 64e-3)
	f.Add(int64(-1), 0.0, 0.0, 0.0, 0.0, -1, uint8(5), -1.0, -1, -1, -1, -1.0, -1.0)
	f.Add(int64(0), 1e-3, 0.0, 0.0, 1e-12, 0, uint8(2), 0.0, 0, 0, 0, 0.0, 0.0) // ~1e9 events: must reject
	f.Add(int64(0), math.NaN(), math.Inf(1), -0.0, 0.0, 0, uint8(0), math.Inf(-1), 0, 1<<30, 1<<30, math.NaN(), 0.0)
	f.Fuzz(func(t *testing.T, seed int64, horizon, wlMTBF, wlMTTR, jobMTBF float64,
		wlPerFault int, kindIdx uint8, evTime float64, evFabric, evCount, maxRetries int,
		backoff, backoffMax float64) {
		// Keep the valid side of an iteration cheap: a plan that passes
		// validation may generate at most ~2k events here. The 200k
		// validation ceiling itself is pinned in
		// TestAdversarialInputsRejected.
		if horizon > 10 && !math.IsInf(horizon, 0) {
			horizon = math.Mod(horizon, 10)
		}
		for _, mtbf := range []*float64{&wlMTBF, &jobMTBF} {
			if *mtbf > 0 && horizon / *mtbf > 2000 {
				*mtbf = horizon / 2000
			}
		}
		plan := wrht.FaultPlan{
			Seed:                seed,
			HorizonSec:          horizon,
			WavelengthMTBFSec:   wlMTBF,
			WavelengthMTTRSec:   wlMTTR,
			WavelengthsPerFault: wlPerFault,
			JobFaultMTBFSec:     jobMTBF,
			MaxRetries:          clampInt(maxRetries, -1, 100),
			RetryBackoffSec:     backoff,
			RetryBackoffMaxSec:  backoffMax,
			Scripted: []wrht.FaultEvent{{
				TimeSec: evTime,
				Kind:    kinds[int(kindIdx)%len(kinds)],
				Fabric:  evFabric,
				Count:   clampInt(evCount, -1, 64),
			}},
		}
		cfg := wrht.DefaultConfig(8)
		jobs := []wrht.JobSpec{
			{Name: "a", Bytes: 1 << 14, Iterations: 2},
			{Name: "b", Bytes: 1 << 15, Iterations: 1, ArrivalSec: 0.1},
		}
		policy := wrht.FabricPolicy{Kind: wrht.FabricFirstFit}
		res, err := wrht.SimulateFabric(cfg, jobs, policy, plan)
		if err != nil {
			return
		}
		if math.IsNaN(res.MakespanSec) || res.MakespanSec < 0 || math.IsInf(res.MakespanSec, 0) {
			t.Fatalf("accepted plan produced makespan %v (plan %+v)", res.MakespanSec, plan)
		}
		// Makespan is the last completion time, so it may be 0 only when no
		// job completed (e.g. a scripted fault darkens the whole budget and
		// every job burns its retry allowance).
		completed := 0
		for _, j := range res.Jobs {
			if !j.Rejected && !j.Failed {
				completed++
			}
		}
		if completed > 0 && !(res.MakespanSec > 0) {
			t.Fatalf("%d jobs completed but makespan is %v (plan %+v)", completed, res.MakespanSec, plan)
		}
		again, err := wrht.SimulateFabric(cfg, jobs, policy, plan)
		if err != nil || !reflect.DeepEqual(res, again) {
			t.Fatalf("non-deterministic under faults: %+v vs %+v (err %v)", res, again, err)
		}
	})
}

func FuzzFleetTraceSpec(f *testing.F) {
	f.Add("poisson", 16, int64(1), 1.0, 2, 2, 8, 3, 0.0, 0.0, 0.0, 0.0, 0)
	f.Add("diurnal", 32, int64(9), 0.5, 3, 2, 4, 2, 3600.0, 0.5, 0.0, 0.0, 0)
	f.Add("heavy-tail", 64, int64(-3), 2.0, 1, 1, 1, 1, 0.0, 0.0, 1.5, 0.5, 4)
	f.Add("", 0, int64(0), 0.0, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0)
	f.Add("bogus", -1, int64(0), -1.0, -1, -1, -1, -1, -1.0, 2.0, 1.0, -1.0, -1)
	f.Add("poisson", 1<<30, int64(0), 1.0, 1, 1, 1, 1, 0.0, 0.0, 0.0, 0.0, 0) // jobs past cap
	f.Fuzz(func(t *testing.T, kind string, jobsN int, seed int64, meanGap float64,
		numShapes, numFabrics, maxWidth, priorities int,
		period, amplitude, tailAlpha, burstProb float64, burstSize int) {
		spec := wrht.FleetTraceSpec{
			Kind:       kind,
			Jobs:       clampInt(jobsN, -1, 2048),
			Seed:       seed,
			MeanGapSec: meanGap,
			NumShapes:  numShapes,
			NumFabrics: numFabrics,
			MaxWidth:   clampInt(maxWidth, -1, 1<<20),
			Priorities: priorities,
			PeriodSec:  period,
			Amplitude:  amplitude,
			TailAlpha:  tailAlpha,
			BurstProb:  burstProb,
			BurstSize:  burstSize,
		}
		jobs, err := wrht.GenerateFleetTrace(spec)
		if err != nil {
			return
		}
		if len(jobs) != spec.Jobs {
			t.Fatalf("trace length %d, spec asked for %d", len(jobs), spec.Jobs)
		}
		prev := 0.0
		for i, j := range jobs {
			if j.ArrivalSec < prev || math.IsNaN(j.ArrivalSec) {
				t.Fatalf("job %d arrival %v after %v: arrivals must be nondecreasing", i, j.ArrivalSec, prev)
			}
			prev = j.ArrivalSec
			if j.MinWavelengths < 1 || j.MaxWavelengths < j.MinWavelengths {
				t.Fatalf("job %d width bounds [%d, %d]", i, j.MinWavelengths, j.MaxWavelengths)
			}
			if j.Iterations < 1 {
				t.Fatalf("job %d iterations %d", i, j.Iterations)
			}
		}
		again, err := wrht.GenerateFleetTrace(spec)
		if err != nil || !reflect.DeepEqual(jobs, again) {
			t.Fatalf("trace generation is not deterministic (err %v)", err)
		}
	})
}

// TestAdversarialInputsRejected pins the inputs that used to hang or
// exhaust memory before validation bounded them: each must now come back
// as a fast validation error, not a stall.
func TestAdversarialInputsRejected(t *testing.T) {
	t.Run("pipeline-chunks-unbounded", func(t *testing.T) {
		cfg := wrht.DefaultConfig(8)
		cfg.PipelineChunks = 1 << 30 // used to hang: O(chunks) schedule loop
		_, err := wrht.CommunicationTime(cfg, wrht.AlgWrhtPipelined, 4096)
		if err == nil || !strings.Contains(err.Error(), "pipeline chunks") {
			t.Fatalf("want pipeline chunks cap error, got %v", err)
		}
	})
	jobs := []wrht.JobSpec{{Name: "j", Bytes: 1 << 16, Iterations: 2}}
	policy := wrht.FabricPolicy{Kind: wrht.FabricFirstFit}
	t.Run("fault-generator-event-flood", func(t *testing.T) {
		// ~1e9 expected job faults: used to expand eagerly and hang.
		plan := wrht.FaultPlan{JobFaultMTBFSec: 1e-12, HorizonSec: 1e-3}
		_, err := wrht.SimulateFabric(wrht.DefaultConfig(8), jobs, policy, plan)
		if err == nil || !strings.Contains(err.Error(), "events over") {
			t.Fatalf("want expected-event cap error, got %v", err)
		}
		// Same flood on the wavelength generator.
		plan = wrht.FaultPlan{WavelengthMTBFSec: 1e-9, WavelengthMTTRSec: 1e-9, HorizonSec: 1}
		_, err = wrht.SimulateFabric(wrht.DefaultConfig(8), jobs, policy, plan)
		if err == nil || !strings.Contains(err.Error(), "events over") {
			t.Fatalf("want expected-event cap error, got %v", err)
		}
	})
	t.Run("retry-budget-unbounded", func(t *testing.T) {
		plan := wrht.FaultPlan{JobFaultMTBFSec: 0.01, HorizonSec: 10, MaxRetries: 1 << 30}
		_, err := wrht.SimulateFabric(wrht.DefaultConfig(8), jobs, policy, plan)
		if err == nil || !strings.Contains(err.Error(), "retry budget") {
			t.Fatalf("want retry budget cap error, got %v", err)
		}
	})
	t.Run("trace-jobs-unbounded", func(t *testing.T) {
		// Traces materialize as a slice: an absurd count must error, not
		// allocate gigabytes.
		_, err := wrht.GenerateFleetTrace(wrht.FleetTraceSpec{
			Kind: "poisson", Jobs: 1 << 40, MeanGapSec: 1,
		})
		if err == nil || !strings.Contains(err.Error(), "job count") {
			t.Fatalf("want trace job cap error, got %v", err)
		}
	})
}
