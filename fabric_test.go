package wrht

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// fabricTestConfig keeps fabric tests fast: 16 nodes, 16 wavelengths.
func fabricTestConfig() Config {
	cfg := DefaultConfig(16)
	cfg.Optical.Wavelengths = 16
	return cfg
}

// TestFabricSingleJobMatchesCommunicationTime is the bridge invariant: one
// tenant alone on the fabric must reproduce the dedicated single-ring path
// exactly (same simulator, full budget, zero queueing).
func TestFabricSingleJobMatchesCommunicationTime(t *testing.T) {
	cfg := fabricTestConfig()
	for _, alg := range []Algorithm{AlgWrht, AlgORing, AlgORingStriped} {
		want, err := CommunicationTime(cfg, alg, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateFabric(cfg,
			[]JobSpec{{Name: "solo", Bytes: 1 << 20, Algorithm: alg}},
			FabricPolicy{Kind: FabricFirstFit})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		j := res.Jobs[0]
		if j.QueueSec != 0 || j.Width != cfg.Optical.Wavelengths {
			t.Fatalf("%s: solo job queued or narrowed: %+v", alg, j)
		}
		if j.DoneSec != want.Seconds {
			t.Fatalf("%s: fabric %v != single-ring %v", alg, j.DoneSec, want.Seconds)
		}
		if math.Abs(j.Slowdown-1) > 1e-12 {
			t.Fatalf("%s: solo slowdown %v", alg, j.Slowdown)
		}
	}
}

// fabricTestJobs is a heterogeneous 8-job mix over the catalog models.
func fabricTestJobs() []JobSpec {
	models := []string{"AlexNet", "VGG16", "ResNet50", "GoogLeNet"}
	var jobs []JobSpec
	for i := 0; i < 8; i++ {
		jobs = append(jobs, JobSpec{
			Model:          models[i%len(models)],
			ArrivalSec:     float64(i) * 2e-3,
			Priority:       i % 3,
			MaxWavelengths: 4 + (i%3)*6,
		})
	}
	return jobs
}

func TestFabricPoliciesOnHeterogeneousMix(t *testing.T) {
	cfg := fabricTestConfig()
	results, err := CompareFabricPolicies(cfg, fabricTestJobs(), FabricPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for _, res := range results {
		if res.RejectedJobs != 0 {
			t.Fatalf("%s: rejected %d jobs", res.Policy, res.RejectedJobs)
		}
		if len(res.Jobs) != 8 {
			t.Fatalf("%s: %d jobs", res.Policy, len(res.Jobs))
		}
		if res.PeakWavelengths > res.Budget {
			t.Fatalf("%s: peak %d exceeds budget %d", res.Policy, res.PeakWavelengths, res.Budget)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%s: utilization %v", res.Policy, res.Utilization)
		}
		if res.Fairness <= 0 || res.Fairness > 1 {
			t.Fatalf("%s: fairness %v", res.Policy, res.Fairness)
		}
		for _, j := range res.Jobs {
			if j.Slowdown < 1-1e-9 {
				t.Fatalf("%s: job %s slowdown %v < 1", res.Policy, j.Name, j.Slowdown)
			}
			if len(j.Wavelengths) != j.Width || j.Width > res.Budget {
				t.Fatalf("%s: job %s wavelength set %v width %d", res.Policy, j.Name, j.Wavelengths, j.Width)
			}
		}
	}
}

func TestFabricDeterministic(t *testing.T) {
	cfg := fabricTestConfig()
	a, err := SimulateFabric(cfg, fabricTestJobs(), FabricPolicy{Kind: FabricPriority})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateFabric(cfg, fabricTestJobs(), FabricPolicy{Kind: FabricPriority})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical fabric simulations differ")
	}
}

func TestFabricPriorityFavorsHighPriority(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := []JobSpec{
		{Name: "bg", Model: "VGG16", Priority: 0, MinWavelengths: 16},
		{Name: "urgent", Model: "AlexNet", Priority: 5, ArrivalSec: 1e-3, MinWavelengths: 16},
	}
	res, err := SimulateFabric(cfg, jobs, FabricPolicy{Kind: FabricPriority})
	if err != nil {
		t.Fatal(err)
	}
	var bg, urgent FabricJobResult
	for _, j := range res.Jobs {
		switch j.Name {
		case "bg":
			bg = j
		case "urgent":
			urgent = j
		}
	}
	if urgent.QueueSec != 0 || bg.Preemptions == 0 {
		t.Fatalf("urgent should preempt bg: urgent=%+v bg=%+v", urgent, bg)
	}
	if bg.DoneSec <= urgent.DoneSec {
		t.Fatalf("preempted job finished first: bg=%v urgent=%v", bg.DoneSec, urgent.DoneSec)
	}
}

func TestFabricFixedGroupSizeRaisesMinimumGrant(t *testing.T) {
	// A fixed Wrht group size m structurally needs ⌊m/2⌋ wavelengths. A
	// tenant with the default minimum must not be dispatched at a narrower
	// width (which would abort the whole co-simulation mid-run).
	cfg := fabricTestConfig()
	cfg.WrhtGroupSize = 8
	jobs := []JobSpec{
		{Name: "wide", Bytes: 1 << 20, MaxWavelengths: 14},
		{Name: "late", Bytes: 1 << 20, ArrivalSec: 1e-6},
	}
	res, err := SimulateFabric(cfg, jobs, FabricPolicy{Kind: FabricFirstFit})
	if err != nil {
		t.Fatal(err)
	}
	late := res.Jobs[1]
	if late.Width < 4 {
		t.Fatalf("late tenant dispatched below the structural floor: %+v", late)
	}
	// A cap below the floor is impossible and reported up front.
	if _, err := SimulateFabric(cfg,
		[]JobSpec{{Name: "impossible", Model: "AlexNet", MaxWavelengths: 2}},
		FabricPolicy{Kind: FabricFirstFit}); err == nil {
		t.Fatal("cap below the structural floor accepted")
	}
}

func TestCompareFabricPoliciesSharesRuntimeCache(t *testing.T) {
	// The cached sweep must produce results identical to independent runs.
	cfg := fabricTestConfig()
	swept, err := CompareFabricPolicies(cfg, fabricTestJobs(), FabricPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for i, pol := range FabricPolicies() {
		solo, err := SimulateFabric(cfg, fabricTestJobs(), pol)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(swept[i], solo) {
			t.Fatalf("%s: cached sweep differs from standalone run", pol)
		}
	}
}

func TestFabricValidation(t *testing.T) {
	cfg := fabricTestConfig()
	ok := []JobSpec{{Bytes: 1 << 20}}
	if _, err := SimulateFabric(cfg, ok, FabricPolicy{Kind: "round-robin"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := SimulateFabric(cfg, []JobSpec{{Bytes: 1 << 20, Algorithm: AlgERing}},
		FabricPolicy{Kind: FabricFirstFit}); err == nil {
		t.Fatal("electrical algorithm accepted on the optical fabric")
	}
	if _, err := SimulateFabric(cfg, []JobSpec{{Model: "NoSuchNet"}},
		FabricPolicy{Kind: FabricFirstFit}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := SimulateFabric(cfg, []JobSpec{{Bytes: -5}},
		FabricPolicy{Kind: FabricFirstFit}); err == nil {
		t.Fatal("negative bytes accepted")
	}
	if _, err := SimulateFabric(cfg, []JobSpec{{Bytes: 1 << 20, MinWavelengths: -3}},
		FabricPolicy{Kind: FabricFirstFit}); err == nil {
		t.Fatal("negative MinWavelengths accepted")
	}
	bad := cfg
	bad.Nodes = 1
	if _, err := SimulateFabric(bad, ok, FabricPolicy{Kind: FabricFirstFit}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestJobSpecValidate: every malformed field is rejected with a clear error
// up front instead of being silently clamped (or panicking) downstream.
func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{Name: "ok", Bytes: 1 << 20, MinWavelengths: 2, MaxWavelengths: 8, Iterations: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"negative bytes", JobSpec{Name: "j", Bytes: -1}},
		{"negative bytes with model", JobSpec{Name: "j", Model: "AlexNet", Bytes: -7}},
		{"negative arrival", JobSpec{Name: "j", Bytes: 1, ArrivalSec: -0.5}},
		{"NaN arrival", JobSpec{Name: "j", Bytes: 1, ArrivalSec: math.NaN()}},
		{"Inf arrival", JobSpec{Name: "j", Bytes: 1, ArrivalSec: math.Inf(1)}},
		{"negative min", JobSpec{Name: "j", Bytes: 1, MinWavelengths: -2}},
		{"negative max", JobSpec{Name: "j", Bytes: 1, MaxWavelengths: -2}},
		{"min above max", JobSpec{Name: "j", Bytes: 1, MinWavelengths: 8, MaxWavelengths: 4}},
		{"negative iterations", JobSpec{Name: "j", Bytes: 1, Iterations: -1}},
	}
	cfg := fabricTestConfig()
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
		}
		// The same rejection surfaces through SimulateFabric before any
		// simulation runs (regression: a negative Bytes used to be ignored
		// when Model was set, and an inverted range surfaced as an opaque
		// internal error).
		if _, err := SimulateFabric(cfg, []JobSpec{tc.spec}, FabricPolicy{Kind: FabricFirstFit}); err == nil {
			t.Errorf("%s: SimulateFabric accepted %+v", tc.name, tc.spec)
		}
	}
}

// churnTestJobs is a departure-heavy mix: a wide long-running job plus
// bursts of short narrow-start jobs, so capacity frees repeatedly while
// later tenants are still running at the widths they started with.
func churnTestJobs() []JobSpec {
	jobs := []JobSpec{
		{Name: "pioneer", Model: "VGG16", Iterations: 2},
	}
	for i := 0; i < 6; i++ {
		jobs = append(jobs, JobSpec{
			Name:       fmt.Sprintf("short%d", i),
			Model:      "AlexNet",
			ArrivalSec: 1e-3 + float64(i)*5e-4,
		})
	}
	return jobs
}

// TestFabricElasticImprovesOnFirstFit: on a departure-heavy mix, widening
// survivors into freed capacity must strictly beat first-fit's
// grant-once-and-hold on both makespan and mean slowdown.
func TestFabricElasticImprovesOnFirstFit(t *testing.T) {
	cfg := fabricTestConfig()
	results, err := CompareFabricPolicies(cfg, churnTestJobs(), []FabricPolicy{
		{Kind: FabricFirstFit},
		{Kind: FabricElastic, ReconfigDelaySec: 2e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	ff, el := results[0], results[1]
	if el.MakespanSec >= ff.MakespanSec {
		t.Fatalf("elastic makespan %v not better than first-fit %v", el.MakespanSec, ff.MakespanSec)
	}
	if el.MeanSlowdown >= ff.MeanSlowdown {
		t.Fatalf("elastic mean slowdown %v not better than first-fit %v", el.MeanSlowdown, ff.MeanSlowdown)
	}
	reconfigs := 0
	sawEvent := false
	for _, j := range el.Jobs {
		reconfigs += j.Reconfigs
	}
	for _, ev := range el.Events {
		if ev.Kind == "reconfig" {
			sawEvent = true
		}
	}
	if reconfigs == 0 || !sawEvent {
		t.Fatalf("elastic run reconfigured %d times, reconfig event seen: %v", reconfigs, sawEvent)
	}
}

// TestFabricElasticSoloMatchesCommunicationTime extends the bridge
// invariant to the elastic policy: a lone tenant never reconfigures, so it
// reproduces the dedicated-ring time exactly even with a settling delay.
func TestFabricElasticSoloMatchesCommunicationTime(t *testing.T) {
	cfg := fabricTestConfig()
	want, err := CommunicationTime(cfg, AlgWrht, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateFabric(cfg,
		[]JobSpec{{Name: "solo", Bytes: 1 << 20}},
		FabricPolicy{Kind: FabricElastic, ReconfigDelaySec: 2e-6})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.DoneSec != want.Seconds || j.Reconfigs != 0 {
		t.Fatalf("solo elastic tenant: %+v vs dedicated %v", j, want.Seconds)
	}
}

// TestFabricTiedPrioritiesStableAcrossParallelism: a mix where every job
// shares one priority and arrival time must co-simulate identically at any
// sweep parallelism (the tie is broken by admission index, not by worker
// scheduling).
func TestFabricTiedPrioritiesStableAcrossParallelism(t *testing.T) {
	var jobs []JobSpec
	for i := 0; i < 6; i++ {
		jobs = append(jobs, JobSpec{
			Name:     fmt.Sprintf("tied%d", i),
			Bytes:    int64(1+i) << 19,
			Priority: 2, // same priority, same (zero) arrival for all
		})
	}
	spec := SweepSpec{
		Base:           fabricTestConfig(),
		FabricMixes:    []FabricMix{{Name: "tied", Jobs: jobs}},
		FabricPolicies: []FabricPolicy{{Kind: FabricPriority}, {Kind: FabricElastic}},
	}
	var want *SweepResult
	for _, par := range []int{1, 4, 8} {
		spec.Parallelism = par
		got, err := RunSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want.Cells, got.Cells) {
			t.Fatalf("tied-priority fabric sweep differs at parallelism %d", par)
		}
	}
}

// TestSessionFabricDistinguishesConfigs: the session-scoped fabric runtime
// cache keys on the full Config, so co-simulating two different substrate
// configurations on one SweepSession never serves one configuration's
// runtimes to the other (regression: the key once held only the node count).
func TestSessionFabricDistinguishesConfigs(t *testing.T) {
	jobs := []JobSpec{
		{Name: "a", Bytes: 4 << 20},
		{Name: "b", Bytes: 2 << 20, ArrivalSec: 1e-4},
	}
	policies := []FabricPolicy{{Kind: FabricFirstFit}}
	cfgA := DefaultConfig(16)
	cfgB := DefaultConfig(16)
	cfgB.Optical.GbpsPerWavelength /= 4

	sess := NewSweepSession()
	if _, err := sess.CompareFabricPolicies(cfgA, jobs, policies); err != nil {
		t.Fatal(err)
	}
	warm, err := sess.CompareFabricPolicies(cfgB, jobs, policies)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := CompareFabricPolicies(cfgB, jobs, policies)
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].MakespanSec != fresh[0].MakespanSec {
		t.Fatalf("session served stale runtimes across configs: warm %v, fresh %v",
			warm[0].MakespanSec, fresh[0].MakespanSec)
	}
}
