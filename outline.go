package wrht

import (
	"fmt"

	"wrht/internal/core"
	"wrht/internal/ring"
	"wrht/internal/runner"
	"wrht/internal/wdm"
)

// StepOutline describes one synchronous step of a schedule for inspection
// and visualization (examples/schedule_inspect renders the paper's Figure 1
// from it).
type StepOutline struct {
	Index     int
	Label     string
	Transfers int
	// Wavelengths is the number of distinct wavelengths a First-Fit
	// assignment uses for this step on the optical ring.
	Wavelengths int
	// Arcs lists each transfer as "src->dst[xWidth]" (capped at 64 entries).
	Arcs []string
	// Seconds is the simulated duration of this step for the given buffer.
	Seconds float64
}

// ScheduleOutline builds the algorithm's schedule for a buffer of the given
// size and returns a per-step outline, including per-step optical timings
// and wavelength counts.
func ScheduleOutline(cfg Config, alg Algorithm, bytes int64) ([]StepOutline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("wrht: non-positive buffer size %d", bytes)
	}
	elems := int((bytes + int64(cfg.BytesPerElem) - 1) / int64(cfg.BytesPerElem))
	s, _, err := buildSchedule(cfg, alg, elems, core.BuildPlan)
	if err != nil {
		return nil, err
	}
	topo, err := ring.New(cfg.Nodes)
	if err != nil {
		return nil, err
	}

	opts := runner.DefaultOpticalOptions()
	opts.Params = cfg.Optical
	opts.BytesPerElem = cfg.BytesPerElem
	if alg == AlgORingStriped {
		opts.DefaultWidth = cfg.Optical.Wavelengths
	}
	res, err := runner.RunOptical(s, opts)
	if err != nil {
		return nil, err
	}

	out := make([]StepOutline, 0, len(s.Steps))
	for si, st := range s.Steps {
		o := StepOutline{
			Index:     si + 1,
			Label:     st.Label,
			Transfers: len(st.Transfers),
			Seconds:   res.StepSec[si],
		}
		demands := make([]wdm.Demand, 0, len(st.Transfers))
		for _, tr := range st.Transfers {
			if tr.Region.Len == 0 {
				continue
			}
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			if !tr.Routed {
				arc = topo.ShortestArc(tr.Src, tr.Dst)
			}
			width := tr.Width
			if width < 1 {
				width = opts.DefaultWidth
			}
			if width > cfg.Optical.Wavelengths {
				width = cfg.Optical.Wavelengths
			}
			demands = append(demands, wdm.Demand{Arc: arc, Width: width})
			if len(o.Arcs) < 64 {
				o.Arcs = append(o.Arcs, fmt.Sprintf("%d->%d[x%d]", tr.Src, tr.Dst, width))
			}
		}
		if len(demands) > 0 {
			rounds, err := wdm.Rounds(topo, demands, cfg.Optical.Wavelengths, wdm.FirstFit, wdm.AsGiven)
			if err != nil {
				return nil, err
			}
			for _, rd := range rounds {
				if rd.Assignment.NumColors > o.Wavelengths {
					o.Wavelengths = rd.Assignment.NumColors
				}
			}
		}
		out = append(out, o)
	}
	return out, nil
}
