// Benchmarks regenerate every quantitative result in the paper (and this
// repository's ablations). Each reported metric is a *simulated* time or
// derived statistic; ns/op measures the simulator itself.
//
//	go test -bench=Figure2 -benchmem          # the paper's only data figure
//	go test -bench=Headline                   # the 75.76% / 91.86% claims
//	go test -bench=. -benchmem                # everything, incl. ablations
//
// See EXPERIMENTS.md for the experiment ↔ benchmark index.
package wrht_test

import (
	"fmt"
	"testing"

	"wrht"
	"wrht/internal/core"
	"wrht/internal/report"
	"wrht/internal/ring"
	"wrht/internal/wdm"
)

var figure2Scales = []int{128, 256, 512, 1024}

// skipInShort marks the benchmarks whose single iteration simulates
// 512–1024-node ring schedules or GB-scale buffers; the CI smoke run
// (-short -benchtime=1x) exercises the rest.
func skipInShort(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy simulation; skipped in short mode")
	}
}

// BenchmarkSweepEngine compares the historical serial point-by-point pricing
// loop against the concurrent engine with its shared plan cache on the same
// 48-point grid (3 scales × 2 wavelength budgets × 4 models × 2 Wrht
// variants). ns/op is the wall clock; planBuilds/op counts core.BuildPlan
// invocations (the optimizer issues hundreds of candidate builds per
// distinct (nodes, wavelengths) pair, which the cache pays once instead of
// once per point).
func BenchmarkSweepEngine(b *testing.B) {
	nodes := []int{64, 128, 256}
	waves := []int{32, 64}
	algs := []wrht.Algorithm{wrht.AlgWrht, wrht.AlgWrhtUnstriped}
	models := wrht.Models()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}

	b.Run("serial", func(b *testing.B) {
		start := core.PlanBuildCount()
		for i := 0; i < b.N; i++ {
			for _, n := range nodes {
				for _, w := range waves {
					for _, m := range models {
						for _, alg := range algs {
							cfg := wrht.DefaultConfig(n)
							cfg.Optical.Wavelengths = w
							if _, err := wrht.CommunicationTime(cfg, alg, m.Bytes); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			}
		}
		b.ReportMetric(float64(core.PlanBuildCount()-start)/float64(b.N), "planBuilds/op")
	})
	b.Run("engine", func(b *testing.B) {
		spec := wrht.SweepSpec{
			Nodes:       nodes,
			Wavelengths: waves,
			Models:      names,
			Algorithms:  algs,
		}
		start := core.PlanBuildCount()
		for i := 0; i < b.N; i++ {
			res, err := wrht.RunSweep(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := res.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(core.PlanBuildCount()-start)/float64(b.N), "planBuilds/op")
	})
}

// BenchmarkFigure2 regenerates Figure 2: per (model, N), the communication
// time of the paper's four algorithms, reported in milliseconds of simulated
// time (the paper's "normalized time" unit is ≈1 ms; see EXPERIMENTS.md).
func BenchmarkFigure2(b *testing.B) {
	skipInShort(b)
	for _, m := range wrht.Models() {
		for _, n := range figure2Scales {
			b.Run(fmt.Sprintf("%s/N%d", m.Name, n), func(b *testing.B) {
				cfg := wrht.DefaultConfig(n)
				var last map[wrht.Algorithm]float64
				for i := 0; i < b.N; i++ {
					last = map[wrht.Algorithm]float64{}
					for _, alg := range wrht.PaperAlgorithms() {
						r, err := wrht.CommunicationTime(cfg, alg, m.Bytes)
						if err != nil {
							b.Fatal(err)
						}
						last[alg] = r.Seconds
					}
				}
				b.ReportMetric(last[wrht.AlgERing]*1e3, "eRing_ms")
				b.ReportMetric(last[wrht.AlgRD]*1e3, "rd_ms")
				b.ReportMetric(last[wrht.AlgORing]*1e3, "oRing_ms")
				b.ReportMetric(last[wrht.AlgWrht]*1e3, "wrht_ms")
			})
		}
	}
}

// BenchmarkHeadlineReduction reproduces the abstract's claims: WRHT reduces
// communication time by 75.76% vs the electrical algorithms and 91.86% vs
// the optical ring (averaged over Figure 2's 4 models × 4 scales).
func BenchmarkHeadlineReduction(b *testing.B) {
	skipInShort(b)
	var vsERing, vsElec, vsORing float64
	for i := 0; i < b.N; i++ {
		vsERing, vsElec, vsORing = 0, 0, 0
		count := 0
		for _, m := range wrht.Models() {
			for _, n := range figure2Scales {
				cfg := wrht.DefaultConfig(n)
				get := func(a wrht.Algorithm) float64 {
					r, err := wrht.CommunicationTime(cfg, a, m.Bytes)
					if err != nil {
						b.Fatal(err)
					}
					return r.Seconds
				}
				w, e, rd, o := get(wrht.AlgWrht), get(wrht.AlgERing), get(wrht.AlgRD), get(wrht.AlgORing)
				vsERing += 1 - w/e
				vsElec += 1 - w/((e+rd)/2)
				vsORing += 1 - w/o
				count++
			}
		}
		vsERing /= float64(count)
		vsElec /= float64(count)
		vsORing /= float64(count)
	}
	b.ReportMetric(100*vsERing, "vsERing_pct")
	b.ReportMetric(100*vsElec, "vsElectrical_pct") // paper: 75.76
	b.ReportMetric(100*vsORing, "vsORing_pct")     // paper: 91.86
}

// BenchmarkStepCounts verifies/reports the paper's step-count law
// 2⌈log_m N⌉ (−1) across the Figure-2 scales for representative group sizes.
func BenchmarkStepCounts(b *testing.B) {
	for _, n := range figure2Scales {
		for _, m := range []int{3, 9, 129} {
			b.Run(fmt.Sprintf("N%d/m%d", n, m), func(b *testing.B) {
				var steps int
				for i := 0; i < b.N; i++ {
					p, err := core.BuildPlan(n, 64, core.Options{M: m, Policy: core.A2AFormula, Striping: true})
					if err != nil {
						b.Fatal(err)
					}
					steps = p.NumSteps()
					if steps > p.StepsUpperBound() {
						b.Fatalf("steps %d exceed paper bound %d", steps, p.StepsUpperBound())
					}
				}
				b.ReportMetric(float64(steps), "steps")
				b.ReportMetric(float64(2*core.CeilLogM(m, n)), "paper_bound")
			})
		}
	}
}

// BenchmarkWavelengthDemand reports the paper's wavelength requirements:
// ⌊m/2⌋ per tree step and ⌈r²/8⌉ (Liang–Shen) for the final all-to-all,
// against the colors an actual First-Fit assignment uses.
func BenchmarkWavelengthDemand(b *testing.B) {
	for _, r := range []int{2, 4, 8, 13, 16} {
		b.Run(fmt.Sprintf("alltoall/r%d", r), func(b *testing.B) {
			topo := ring.MustNew(r * 8)
			nodes := make([]int, r)
			for i := range nodes {
				nodes[i] = i * 8
			}
			var colors int
			for i := 0; i < b.N; i++ {
				demands := wdm.AllToAllDemandsBalanced(topo, nodes, 1)
				asg, err := wdm.Assign(topo, demands, wdm.FirstFit, wdm.LongestFirst)
				if err != nil {
					b.Fatal(err)
				}
				colors = asg.NumColors
			}
			b.ReportMetric(float64(colors), "firstfit_colors")
			b.ReportMetric(float64(wdm.LiangShenBound(r)), "liang_shen_bound")
		})
	}
	for _, m := range []int{3, 9, 17, 129} {
		b.Run(fmt.Sprintf("tree/m%d", m), func(b *testing.B) {
			var demand int
			for i := 0; i < b.N; i++ {
				p, err := core.BuildPlan(1024, 64, core.Options{M: m, Policy: core.A2AFormula, Striping: false})
				if err != nil {
					b.Fatal(err)
				}
				demand = 0
				for _, lvl := range p.ReduceLevels {
					if lvl.Demand > demand {
						demand = lvl.Demand
					}
				}
			}
			b.ReportMetric(float64(demand), "tree_demand")
			b.ReportMetric(float64(m/2), "paper_half_m")
		})
	}
}

// BenchmarkAblationStriping (A1): what wavelength striping buys Wrht, and
// how a striped ring baseline would compare (the paper's O-Ring is
// unstriped by definition).
func BenchmarkAblationStriping(b *testing.B) {
	skipInShort(b)
	m := wrht.MustModel("VGG16")
	for _, n := range []int{128, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			cfg := wrht.DefaultConfig(n)
			var striped, unstriped, ringStriped float64
			for i := 0; i < b.N; i++ {
				for _, c := range []struct {
					alg wrht.Algorithm
					dst *float64
				}{
					{wrht.AlgWrht, &striped},
					{wrht.AlgWrhtUnstriped, &unstriped},
					{wrht.AlgORingStriped, &ringStriped},
				} {
					r, err := wrht.CommunicationTime(cfg, c.alg, m.Bytes)
					if err != nil {
						b.Fatal(err)
					}
					*c.dst = r.Seconds
				}
			}
			b.ReportMetric(striped*1e3, "wrht_ms")
			b.ReportMetric(unstriped*1e3, "wrht_unstriped_ms")
			b.ReportMetric(ringStriped*1e3, "oRingStriped_ms")
		})
	}
}

// BenchmarkAblationFitPolicy (A2): First Fit vs Best Fit wavelength
// assignment (paper §2 cites both) on all-to-all demand sets.
func BenchmarkAblationFitPolicy(b *testing.B) {
	for _, r := range []int{8, 13, 16} {
		b.Run(fmt.Sprintf("r%d", r), func(b *testing.B) {
			topo := ring.MustNew(r * 8)
			nodes := make([]int, r)
			for i := range nodes {
				nodes[i] = i * 8
			}
			demands := wdm.AllToAllDemandsBalanced(topo, nodes, 1)
			var ff, bf int
			for i := 0; i < b.N; i++ {
				a1, err := wdm.Assign(topo, demands, wdm.FirstFit, wdm.LongestFirst)
				if err != nil {
					b.Fatal(err)
				}
				a2, err := wdm.Assign(topo, demands, wdm.BestFit, wdm.LongestFirst)
				if err != nil {
					b.Fatal(err)
				}
				ff, bf = a1.NumColors, a2.NumColors
			}
			b.ReportMetric(float64(ff), "firstfit_colors")
			b.ReportMetric(float64(bf), "bestfit_colors")
		})
	}
}

// BenchmarkAblationGroupSize (A3): Wrht's time as a function of the group
// size m at N=1024, showing the optimizer's choice is the sweet spot.
func BenchmarkAblationGroupSize(b *testing.B) {
	m := wrht.MustModel("VGG16")
	for _, gs := range []int{0, 2, 3, 9, 33, 129} {
		name := fmt.Sprintf("m%d", gs)
		if gs == 0 {
			name = "optimizer"
		}
		b.Run(name, func(b *testing.B) {
			cfg := wrht.DefaultConfig(1024)
			cfg.WrhtGroupSize = gs
			var sec float64
			for i := 0; i < b.N; i++ {
				r, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, m.Bytes)
				if err != nil {
					b.Fatal(err)
				}
				sec = r.Seconds
			}
			b.ReportMetric(sec*1e3, "wrht_ms")
		})
	}
}

// BenchmarkTrainingIteration (A4): one bucketed-overlap DDP iteration per
// interconnect — the paper's motivating 50–90% communication share.
func BenchmarkTrainingIteration(b *testing.B) {
	for _, alg := range []wrht.Algorithm{wrht.AlgERing, wrht.AlgWrht} {
		b.Run(string(alg), func(b *testing.B) {
			cfg := wrht.DefaultConfig(1024)
			var rep wrht.IterationReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = wrht.TrainingIteration(cfg, alg, "VGG16", 25<<20)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.IterationSec*1e3, "iteration_ms")
			b.ReportMetric(100*rep.CommShare, "comm_share_pct")
			b.ReportMetric(100*rep.ScalingEfficiency, "scaling_eff_pct")
		})
	}
}

// BenchmarkSimulatorThroughput measures the simulators themselves (ns/op
// and allocs/op are the honest metrics here): a full Figure-2 cell at the
// paper's largest scale plus the classed-pricing scale N=16384 — routine
// since symmetry-aware pricing dropped the hot path from O(N²) to ~O(N) —
// or, in short mode so CI's regression gates can run it on every push, at
// N=128. Sub-benchmark names carry the scale so cmd/bench's committed
// ceilings and time baselines compare like with like.
func BenchmarkSimulatorThroughput(b *testing.B) {
	scales := []int{1024, 16384}
	if testing.Short() {
		scales = []int{128}
	}
	m := wrht.MustModel("GoogLeNet")
	for _, n := range scales {
		cfg := wrht.DefaultConfig(n)
		for _, alg := range wrht.PaperAlgorithms() {
			b.Run(fmt.Sprintf("%s/N%d", alg, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := wrht.CommunicationTime(cfg, alg, m.Bytes); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOpticalsimThroughput measures the message-level discrete-event
// simulator (the typed 4-ary heap engine) in both modes on a Wrht schedule.
func BenchmarkOpticalsimThroughput(b *testing.B) {
	n := 256
	if testing.Short() {
		n = 64
	}
	m := wrht.MustModel("ResNet50")
	cfg := wrht.DefaultConfig(n)
	for _, async := range []bool{false, true} {
		name := fmt.Sprintf("barrier/N%d", n)
		if async {
			name = fmt.Sprintf("async/N%d", n)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wrht.EventLevelTime(cfg, wrht.AlgWrht, m.Bytes, async); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFabricCoSim measures the multi-tenant fabric co-simulation: a
// three-policy comparison over a mixed job set on a shared SweepSession, the
// path that exercises the plan, schedule, and simulation caches together —
// per-job pricing runs through the session's SimCache, so steady-state
// iterations re-simulate nothing and allocs/op measures the co-sim itself.
func BenchmarkFabricCoSim(b *testing.B) {
	n := 64
	if testing.Short() {
		n = 16
	}
	cfg := wrht.DefaultConfig(n)
	jobs := []wrht.JobSpec{
		{Name: "serve", Model: "AlexNet", Priority: 2, MaxWavelengths: 16},
		{Name: "train", Model: "VGG16", ArrivalSec: 1e-3},
		{Name: "batch", Bytes: 8 << 20, Algorithm: wrht.AlgORing},
	}
	// The historical three grant-once policies, pinned explicitly so the
	// benchmark keeps measuring the same work as committed baselines
	// (FabricPolicies() also returns elastic, which BenchmarkFabricElastic
	// covers separately).
	policies := []wrht.FabricPolicy{
		{Kind: wrht.FabricStatic},
		{Kind: wrht.FabricFirstFit},
		{Kind: wrht.FabricPriority},
	}
	sess := wrht.NewSweepSession()
	b.Run(fmt.Sprintf("3policies/N%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.CompareFabricPolicies(cfg, jobs, policies); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFabricElastic measures the elastic re-allocation co-simulation
// on the canonical departure-heavy mix (EXPERIMENTS.md F2): every departure
// re-solves the stripe assignment and reconfigures running tenants, so this
// is the heaviest dispatch path in internal/fabric. Runtime curves come
// warm from the shared SweepSession after the first iteration; steady-state
// allocs/op measures the elastic scheduler itself.
func BenchmarkFabricElastic(b *testing.B) {
	n := 64
	if testing.Short() {
		n = 16
	}
	cfg := wrht.DefaultConfig(n)
	mix := report.ChurnMix()
	pol := wrht.FabricPolicy{Kind: wrht.FabricElastic, ReconfigDelaySec: 2e-6}
	sess := wrht.NewSweepSession()
	b.Run(fmt.Sprintf("churn/N%d", n), func(b *testing.B) {
		b.ReportAllocs()
		var last wrht.FabricResult
		for i := 0; i < b.N; i++ {
			res, err := sess.SimulateFabric(cfg, mix.Jobs, pol)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reconfigs := 0
		for _, j := range last.Jobs {
			reconfigs += j.Reconfigs
		}
		b.ReportMetric(float64(reconfigs), "reconfigs/op")
		b.ReportMetric(last.MakespanSec*1e3, "makespan-ms")
	})
}

// fleetBenchFabrics builds the benchmark fleet by cycling three pod
// classes (the same heterogeneity pattern as cmd/fabricsim -scenario
// trace): big 16 λ pods, mid 8 λ pods, and small 4 λ edge fabrics.
func fleetBenchFabrics(n int) []wrht.FleetFabricSpec {
	classes := []wrht.FleetFabricSpec{
		{Nodes: 32, Wavelengths: 16, ReconfigDelaySec: 2e-6, MigrationCostSec: 20e-3},
		{Nodes: 16, Wavelengths: 8, ReconfigDelaySec: 5e-6, MigrationCostSec: 10e-3},
		{Nodes: 16, Wavelengths: 4, ReconfigDelaySec: 10e-6, MigrationCostSec: 5e-3},
	}
	out := make([]wrht.FleetFabricSpec, n)
	for i := range out {
		out[i] = classes[i%len(classes)]
		out[i].Name = fmt.Sprintf("pod%02d", i)
	}
	return out
}

// BenchmarkFabricTrace is the headline fleet benchmark (EXPERIMENTS.md F4):
// a seeded million-event Poisson arrival trace (250k jobs, ~1.5M executed
// events) placed across a 16-fabric heterogeneous fleet in aggregate-only
// lite mode, every fabric running the incremental elastic solver at ~79%
// utilization. Runtime curves come warm from the shared SweepSession after
// the first iteration, so steady-state ns/op measures trace placement plus
// the incremental re-solve path itself. cmd/bench holds this benchmark to
// a committed wall-time gate (cmd/bench/timegates.json: the trace must
// price in ≤ 10 s/op); the short CI variant runs 20k jobs on 8 fabrics.
func BenchmarkFabricTrace(b *testing.B) {
	nFab, nJobs, gap := 16, 250000, 0.01
	if testing.Short() {
		nFab, nJobs, gap = 8, 20000, 0.02
	}
	cfg := wrht.DefaultConfig(32)
	fabrics := fleetBenchFabrics(nFab)
	shapes := report.FleetChurnShapes()
	jobs, err := wrht.GenerateFleetTrace(wrht.FleetTraceSpec{
		Kind: "poisson", Jobs: nJobs, Seed: 1, MeanGapSec: gap,
		NumShapes: len(shapes), NumFabrics: nFab, MaxWidth: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	sess := wrht.NewSweepSession()
	b.Run(fmt.Sprintf("poisson/%dfabrics/%dkjobs", nFab, nJobs/1000), func(b *testing.B) {
		b.ReportAllocs()
		var last wrht.FleetResult
		for i := 0; i < b.N; i++ {
			res, err := sess.SimulateFleet(cfg, fabrics, shapes, jobs,
				wrht.FleetOptions{Placement: wrht.FleetLeastLoaded, Lite: true})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.EngineEvents), "events/op")
		b.ReportMetric(float64(last.SolverSolves), "solves/op")
		if total := last.SolverTiersTouched + last.SolverTiersSkipped; total > 0 {
			b.ReportMetric(100*float64(last.SolverTiersSkipped)/float64(total), "tiersSkipped%")
		}
		b.ReportMetric(100*last.Utilization, "util%")
	})
}

// BenchmarkFabricFaults measures the fault-injection path (EXPERIMENTS.md
// F5): the fleet trace of BenchmarkFabricTrace's short scale replayed
// under a seeded failure model spanning all three fault classes, with
// migration recovery. Steady-state ns/op measures fault expansion,
// checkpoint rollback/replay, eviction and parked-retry machinery on top
// of the trace-placement path; allocs/op is gated by
// cmd/bench/ceilings.json like every other headline benchmark.
func BenchmarkFabricFaults(b *testing.B) {
	nFab, nJobs := 8, 20000
	if testing.Short() {
		nFab, nJobs = 4, 4000
	}
	cfg := wrht.DefaultConfig(32)
	fabrics := fleetBenchFabrics(nFab)
	shapes := report.FleetChurnShapes()
	jobs, err := wrht.GenerateFleetTrace(wrht.FleetTraceSpec{
		Kind: "poisson", Jobs: nJobs, Seed: 1, MeanGapSec: 0.02,
		NumShapes: len(shapes), NumFabrics: nFab, MaxWidth: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	span := 0.0
	for i := range jobs {
		jobs[i].CheckpointEverySec = 50e-3
		if jobs[i].ArrivalSec > span {
			span = jobs[i].ArrivalSec
		}
	}
	plan := wrht.FaultPlan{
		Seed:              1,
		HorizonSec:        0.75 * span,
		WavelengthMTBFSec: span / 60,
		WavelengthMTTRSec: span / 600,
		JobFaultMTBFSec:   span / 30,
		FabricMTBFSec:     span / 6,
		FabricMTTRSec:     span / 300,
	}
	sess := wrht.NewSweepSession()
	b.Run(fmt.Sprintf("migrate/%dfabrics/%dkjobs", nFab, nJobs/1000), func(b *testing.B) {
		b.ReportAllocs()
		var last wrht.FleetResult
		for i := 0; i < b.N; i++ {
			res, err := sess.SimulateFleet(cfg, fabrics, shapes, jobs,
				wrht.FleetOptions{
					Placement: wrht.FleetLeastLoaded, Lite: true,
					Faults: plan, Recovery: wrht.RecoveryMigrateOnFailure,
				})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		if last.Retries == 0 || last.Outages == 0 {
			b.Fatalf("fault plan injected nothing: %+v", last)
		}
		b.ReportMetric(float64(last.EngineEvents), "events/op")
		b.ReportMetric(float64(last.Retries), "retries/op")
		b.ReportMetric(float64(last.Evictions), "evictions/op")
		b.ReportMetric(100*last.Availability, "avail%")
	})
}

// BenchmarkExtensionFigure (beyond the paper): the Figure-2 grid on
// transformer workloads — BERT-Large (1.34 GB gradients) and GPT-2 XL
// (6.23 GB) — showing the paper's ordering survives at modern model sizes.
func BenchmarkExtensionFigure(b *testing.B) {
	skipInShort(b)
	for _, name := range []string{"BERT-Large", "GPT-2-XL"} {
		m := wrht.MustModel(name)
		for _, n := range []int{128, 1024} {
			b.Run(fmt.Sprintf("%s/N%d", name, n), func(b *testing.B) {
				cfg := wrht.DefaultConfig(n)
				var last map[wrht.Algorithm]float64
				for i := 0; i < b.N; i++ {
					last = map[wrht.Algorithm]float64{}
					for _, alg := range wrht.PaperAlgorithms() {
						r, err := wrht.CommunicationTime(cfg, alg, m.Bytes)
						if err != nil {
							b.Fatal(err)
						}
						last[alg] = r.Seconds
					}
				}
				b.ReportMetric(last[wrht.AlgERing]*1e3, "eRing_ms")
				b.ReportMetric(last[wrht.AlgRD]*1e3, "rd_ms")
				b.ReportMetric(last[wrht.AlgORing]*1e3, "oRing_ms")
				b.ReportMetric(last[wrht.AlgWrht]*1e3, "wrht_ms")
			})
		}
	}
}

// BenchmarkAblationPipelining (A5, beyond the paper): the chunked-pipeline
// extension versus plain Wrht, in both striping regimes, VGG16 at N=1024.
func BenchmarkAblationPipelining(b *testing.B) {
	skipInShort(b)
	m := wrht.MustModel("VGG16")
	cases := []struct {
		name   string
		alg    wrht.Algorithm
		chunks int
	}{
		{"unstriped/plain", wrht.AlgWrhtUnstriped, 0},
		{"unstriped/pipelined64", wrht.AlgWrhtPipelined, 64},
		{"unstriped/pipelined256", wrht.AlgWrhtPipelined, 256},
		{"striped/plain", wrht.AlgWrht, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := wrht.DefaultConfig(1024)
			cfg.PipelineChunks = c.chunks
			// Fix m=3 across variants: pipelining rewards deep trees, and the
			// unstriped optimizer would otherwise pick a shallow plan.
			cfg.WrhtGroupSize = 3
			var sec float64
			for i := 0; i < b.N; i++ {
				r, err := wrht.CommunicationTime(cfg, c.alg, m.Bytes)
				if err != nil {
					b.Fatal(err)
				}
				sec = r.Seconds
			}
			b.ReportMetric(sec*1e3, "time_ms")
		})
	}
}

// BenchmarkEnergy (extension): joules per all-reduce — the paper's "low
// power cost" motivation, quantified with silicon-photonics vs 100GbE
// energy constants.
func BenchmarkEnergy(b *testing.B) {
	skipInShort(b)
	m := wrht.MustModel("VGG16")
	for _, alg := range []wrht.Algorithm{wrht.AlgERing, wrht.AlgORing, wrht.AlgWrht} {
		b.Run(string(alg), func(b *testing.B) {
			cfg := wrht.DefaultConfig(1024)
			var rep wrht.EnergyReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = wrht.EnergyEstimate(cfg, alg, m.Bytes)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.TotalJ, "total_J")
			b.ReportMetric(rep.DynamicJ, "dynamic_J")
			b.ReportMetric(rep.StaticJ, "static_J")
		})
	}
}

// BenchmarkAsyncVsBarrier (extension): what dropping global step barriers
// would buy a runtime, via the message-level event simulator.
func BenchmarkAsyncVsBarrier(b *testing.B) {
	skipInShort(b)
	m := wrht.MustModel("ResNet50")
	cfg := wrht.DefaultConfig(256)
	var barrier, async float64
	for i := 0; i < b.N; i++ {
		rb, err := wrht.EventLevelTime(cfg, wrht.AlgWrht, m.Bytes, false)
		if err != nil {
			b.Fatal(err)
		}
		ra, err := wrht.EventLevelTime(cfg, wrht.AlgWrht, m.Bytes, true)
		if err != nil {
			b.Fatal(err)
		}
		barrier, async = rb.Seconds, ra.Seconds
	}
	b.ReportMetric(barrier*1e3, "barrier_ms")
	b.ReportMetric(async*1e3, "async_ms")
}

// BenchmarkMultiRack (E12, beyond the paper): hierarchical all-reduce over
// 8 racks × 128 nodes vs the flat electrical ring.
func BenchmarkMultiRack(b *testing.B) {
	skipInShort(b)
	m := wrht.MustModel("VGG16")
	cfg := wrht.DefaultConfig(1)
	var res wrht.MultiRackResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = wrht.MultiRackTime(cfg, 8, 128, m.Bytes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalSec*1e3, "hierarchy_ms")
	b.ReportMetric(res.InterSec*1e3, "inter_ms")
	b.ReportMetric(res.FlatERingSec*1e3, "flatERing_ms")
}
