package wrht

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEnergyEstimateOrdering(t *testing.T) {
	cfg := DefaultConfig(256)
	bytes := MustModel("ResNet50").Bytes
	w, err := EnergyEstimate(cfg, AlgWrht, bytes)
	if err != nil {
		t.Fatal(err)
	}
	e, err := EnergyEstimate(cfg, AlgERing, bytes)
	if err != nil {
		t.Fatal(err)
	}
	o, err := EnergyEstimate(cfg, AlgORing, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalJ <= 0 || e.TotalJ <= 0 || o.TotalJ <= 0 {
		t.Fatalf("non-positive energies: %v %v %v", w.TotalJ, e.TotalJ, o.TotalJ)
	}
	// The paper's motivation: the optical scheme costs less energy than the
	// electrical baseline (per-bit) and than O-Ring (duration-driven static).
	if w.TotalJ >= e.TotalJ {
		t.Errorf("Wrht %.3g J not below E-Ring %.3g J", w.TotalJ, e.TotalJ)
	}
	if w.TotalJ >= o.TotalJ {
		t.Errorf("Wrht %.3g J not below O-Ring %.3g J", w.TotalJ, o.TotalJ)
	}
	if e.TuningJ != 0 {
		t.Error("electrical energy should have no tuning term")
	}
	if w.TuningJ <= 0 {
		t.Error("optical energy should include tuning")
	}
}

func TestEventLevelTimeBarrierMatchesStepModel(t *testing.T) {
	cfg := DefaultConfig(64)
	bytes := int64(16 << 20)
	step, err := CommunicationTime(cfg, AlgWrht, bytes)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EventLevelTime(cfg, AlgWrht, bytes, false)
	if err != nil {
		t.Fatal(err)
	}
	rel := (ev.Seconds - step.Seconds) / step.Seconds
	if rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("event-level barrier %.9g vs step model %.9g", ev.Seconds, step.Seconds)
	}
	async, err := EventLevelTime(cfg, AlgWrht, bytes, true)
	if err != nil {
		t.Fatal(err)
	}
	if async.Seconds > ev.Seconds*1.05 {
		t.Fatalf("async %.6g much slower than barrier %.6g", async.Seconds, ev.Seconds)
	}
	if !strings.Contains(async.Substrate, "async") {
		t.Fatalf("substrate label %q", async.Substrate)
	}
}

func TestEventLevelTimeRejectsElectrical(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := EventLevelTime(cfg, AlgERing, 1024, false); err == nil {
		t.Fatal("electrical algorithm accepted")
	}
	if _, err := EventLevelTime(cfg, AlgWrht, 0, false); err == nil {
		t.Fatal("zero bytes accepted")
	}
}

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	cfg := DefaultConfig(512)
	cfg.WrhtGroupSize = 5
	cfg.Optical.Wavelengths = 32
	cfg.Electrical.LinkGbps = 40
	if err := SaveConfig(cfg, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestLoadConfigRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, `{"Nodes": 8, "Typo": true}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("unknown field accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := writeFile(invalid, `{"Nodes": 1}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(invalid); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := SaveConfig(Config{}, filepath.Join(dir, "x.json")); err == nil {
		t.Fatal("SaveConfig accepted invalid config")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestEnergyEstimateConsistentWithCommunicationTime(t *testing.T) {
	// EnergyEstimate builds the schedule once and must integrate the static
	// term over exactly the duration CommunicationTime reports.
	cfg := DefaultConfig(64)
	for _, alg := range []Algorithm{AlgERing, AlgWrht} {
		rep, err := EnergyEstimate(cfg, alg, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := CommunicationTime(cfg, alg, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Seconds != ct.Seconds {
			t.Fatalf("%s: energy over %.9g s, communication %.9g s", alg, rep.Seconds, ct.Seconds)
		}
	}
}
