package wrht

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/fabric"
)

// JobSpec describes one tenant of a shared optical fabric: an all-reduce
// workload (a catalog model or a raw byte count) arriving at a given time.
type JobSpec struct {
	// Name identifies the job in results; defaults to "job<i>".
	Name string
	// Model names a catalog network (see Models, MustModel); when set, its
	// gradient size overrides Bytes.
	Model string
	// Bytes is the all-reduced buffer size when Model is empty.
	Bytes int64
	// ArrivalSec is when the job reaches the fabric.
	ArrivalSec float64
	// Priority orders jobs under the priority policy (higher preempts).
	Priority int
	// Iterations is the number of back-to-back all-reduces (default 1).
	Iterations int
	// Algorithm prices the job's all-reduce (default AlgWrht). Electrical
	// algorithms are rejected — the fabric shares optical wavelengths.
	Algorithm Algorithm
	// MinWavelengths (default 1) and MaxWavelengths (default: the whole
	// budget) bound the stripe grant the job accepts.
	MinWavelengths int
	MaxWavelengths int
	// CheckpointEverySec is the job's checkpoint interval in productive
	// service seconds (0: no checkpointing). Only meaningful under fault
	// injection: a faulted job replays the work since its last checkpoint
	// instead of restarting from scratch.
	CheckpointEverySec float64
}

// Validate reports a malformed job spec with a clear error instead of
// letting a bad field be silently clamped (or panic) deeper in the
// co-simulation: negative sizes, negative or non-finite arrival times,
// negative wavelength bounds, an inverted MinWavelengths > MaxWavelengths
// range, and negative iteration counts are all rejected. SimulateFabric
// validates every spec up front, so a bad tenant fails the call before any
// simulation runs.
func (spec JobSpec) Validate() error {
	name := spec.Name
	if name == "" {
		name = "(unnamed)"
	}
	if spec.Bytes < 0 {
		return fmt.Errorf("wrht: job %q: negative Bytes %d", name, spec.Bytes)
	}
	if spec.ArrivalSec < 0 {
		return fmt.Errorf("wrht: job %q: negative ArrivalSec %v", name, spec.ArrivalSec)
	}
	if math.IsNaN(spec.ArrivalSec) || math.IsInf(spec.ArrivalSec, 0) {
		return fmt.Errorf("wrht: job %q: non-finite ArrivalSec %v", name, spec.ArrivalSec)
	}
	if spec.MinWavelengths < 0 {
		return fmt.Errorf("wrht: job %q: negative MinWavelengths %d", name, spec.MinWavelengths)
	}
	if spec.MaxWavelengths < 0 {
		return fmt.Errorf("wrht: job %q: negative MaxWavelengths %d", name, spec.MaxWavelengths)
	}
	if spec.MaxWavelengths != 0 && spec.MinWavelengths > spec.MaxWavelengths {
		return fmt.Errorf("wrht: job %q: MinWavelengths %d exceeds MaxWavelengths %d",
			name, spec.MinWavelengths, spec.MaxWavelengths)
	}
	if spec.Iterations < 0 {
		return fmt.Errorf("wrht: job %q: negative Iterations %d", name, spec.Iterations)
	}
	if spec.CheckpointEverySec < 0 || math.IsNaN(spec.CheckpointEverySec) || math.IsInf(spec.CheckpointEverySec, 0) {
		return fmt.Errorf("wrht: job %q: bad CheckpointEverySec %v", name, spec.CheckpointEverySec)
	}
	return nil
}

// FabricPolicy selects how concurrent tenants share the wavelength budget.
type FabricPolicy struct {
	// Kind is FabricStatic, FabricFirstFit, FabricPriority, or
	// FabricElastic.
	Kind string
	// Partitions is the share count for FabricStatic (default 4, clamped
	// to the budget). Each share is budget/Partitions wavelengths wide;
	// the remainder of an inexact division is spread round-robin over the
	// leading shares, so no wavelength is permanently dark.
	Partitions int
	// ReconfigDelaySec is FabricElastic's optical switch settling time:
	// every mid-flight stripe change stalls the affected job this long
	// (it holds its new wavelengths but makes no progress). 0 models an
	// idealized instantly-reconfigurable fabric. Ignored by the other
	// policies.
	ReconfigDelaySec float64
}

// Fabric policy kinds.
const (
	// FabricStatic splits the wavelength budget into fixed shares.
	FabricStatic = "static"
	// FabricFirstFit grants wavelengths first-come first-served from a
	// shared pool; small jobs may overtake a blocked wide job.
	FabricFirstFit = "first-fit"
	// FabricPriority serves jobs by priority and preempts lower-priority
	// tenants when a high-priority job cannot fit.
	FabricPriority = "priority"
	// FabricElastic re-solves the whole stripe assignment on every arrival
	// and departure: running tenants widen up to their MaxWavelengths when
	// capacity frees, shrink (never fully preempt) to admit higher-priority
	// arrivals, and pay ReconfigDelaySec per mid-flight width change.
	FabricElastic = "elastic"
)

// FabricPolicies returns the supported policies in report order.
func FabricPolicies() []FabricPolicy {
	return []FabricPolicy{
		{Kind: FabricStatic},
		{Kind: FabricFirstFit},
		{Kind: FabricPriority},
		{Kind: FabricElastic},
	}
}

func (p FabricPolicy) internal() (fabric.Policy, error) {
	switch p.Kind {
	case FabricStatic:
		return fabric.Policy{Kind: fabric.StaticPartition, Partitions: p.Partitions}, nil
	case FabricFirstFit:
		return fabric.Policy{Kind: fabric.FirstFitShare}, nil
	case FabricPriority:
		return fabric.Policy{Kind: fabric.PriorityPreempt}, nil
	case FabricElastic:
		return fabric.Policy{Kind: fabric.ElasticReallocate, ReconfigDelaySec: p.ReconfigDelaySec}, nil
	default:
		return fabric.Policy{}, fmt.Errorf("wrht: unknown fabric policy %q", p.Kind)
	}
}

// String renders the policy for table headers. An unset Partitions count is
// not shown (the effective value depends on the budget it is applied to);
// an elastic settling delay is shown in microseconds.
func (p FabricPolicy) String() string {
	if p.Kind == FabricStatic && p.Partitions != 0 {
		return fmt.Sprintf("%s/%d", p.Kind, p.Partitions)
	}
	if p.Kind == FabricElastic && p.ReconfigDelaySec != 0 {
		return fmt.Sprintf("%s/%gus", p.Kind, p.ReconfigDelaySec*1e6)
	}
	return p.Kind
}

// FabricJobResult is the per-tenant outcome of a fabric co-simulation.
type FabricJobResult struct {
	Name     string
	Rejected bool
	// ArrivalSec/StartSec/DoneSec are absolute simulation times; QueueSec
	// is the initial queueing delay and ServiceSec the time spent running.
	ArrivalSec float64
	StartSec   float64
	DoneSec    float64
	QueueSec   float64
	ServiceSec float64
	// Wavelengths is the job's final concrete wavelength set (indices into
	// the budget); Width is its size.
	Wavelengths []int
	Width       int
	Preemptions int
	// Reconfigs counts mid-flight stripe changes under FabricElastic; each
	// one stalled the job for the policy's ReconfigDelaySec.
	Reconfigs int
	// AloneSec is the job's solo runtime at its widest grant
	// (MaxWavelengths); Slowdown is (DoneSec-ArrivalSec)/AloneSec, the
	// price of sharing.
	AloneSec float64
	Slowdown float64
	// Retries counts fault-driven re-admissions, Evictions forced removals
	// from the fabric, and LostWorkSec service discarded by faults (work
	// since the last checkpoint, or everything for a checkpoint-free job).
	// Failed marks a job that exhausted its retry budget. All zero without
	// a FaultPlan.
	Retries     int
	Evictions   int
	LostWorkSec float64
	Failed      bool
}

// FabricEvent is one entry of the fabric trace.
type FabricEvent struct {
	TimeSec float64
	Job     string
	// Kind is arrive | reject | start | preempt | resume | reconfig |
	// finish, plus — under a FaultPlan — wavelength-down | wavelength-up |
	// job-fault | evict | retry. A reconfig entry records the job's new
	// stripe width after an elastic re-allocation; a wavelength-down/-up
	// entry the number of wavelengths affected.
	Kind        string
	Wavelengths int
}

// FabricResult aggregates a multi-tenant fabric co-simulation.
type FabricResult struct {
	Policy FabricPolicy
	// Budget is the fabric-wide wavelength count (cfg.Optical.Wavelengths).
	Budget int
	Jobs   []FabricJobResult
	Events []FabricEvent
	// MakespanSec is the last completion time.
	MakespanSec  float64
	MeanQueueSec float64
	MaxQueueSec  float64
	MeanSlowdown float64
	// Fairness is Jain's index over per-job slowdowns (1 = perfectly fair).
	Fairness float64
	// Utilization is lit wavelength-seconds / (budget x makespan).
	Utilization     float64
	PeakWavelengths int
	RejectedJobs    int
	// Fault aggregates (all zero without a FaultPlan): JobFaults counts
	// injected transient faults, Evictions forced removals, Retries
	// re-admissions, FailedJobs exhausted retry budgets, and LostWorkSec
	// the service discarded by faults.
	JobFaults   int
	Evictions   int
	Retries     int
	FailedJobs  int
	LostWorkSec float64
	// Availability is the fraction of wavelength-second capacity
	// (budget × makespan) not lost to dark wavelengths; 1 without faults.
	Availability float64
}

// jobBytes resolves the buffer size of a job spec.
func jobBytes(cfg Config, spec JobSpec) (int64, error) {
	if spec.Model != "" {
		m, err := dnn.ByName(spec.Model)
		if err != nil {
			return 0, err
		}
		return m.GradientBytes(cfg.BytesPerElem), nil
	}
	if spec.Bytes <= 0 {
		return 0, fmt.Errorf("wrht: job %q has no model and non-positive bytes %d",
			spec.Name, spec.Bytes)
	}
	return spec.Bytes, nil
}

// SimulateFabric co-schedules the jobs on one shared optical ring fabric of
// cfg.Nodes workers and cfg.Optical.Wavelengths total wavelengths under the
// policy. Each tenant's all-reduce is priced by the exact single-ring
// simulation path (CommunicationTime) with the optical budget restricted to
// the tenant's granted stripe, so a lone job on the fabric reproduces the
// dedicated-ring numbers. The co-simulation is deterministic.
//
// An optional FaultPlan injects seeded wavelength and job failures on the
// same timeline (see FaultPlan); passing none, or an empty plan, leaves
// every result bit-identical to the fault-free simulation.
func SimulateFabric(cfg Config, jobs []JobSpec, policy FabricPolicy, plan ...FaultPlan) (FabricResult, error) {
	fp, err := onePlan(plan)
	if err != nil {
		return FabricResult{}, err
	}
	return simulateFabric(cfg, jobs, policy, newSession().fabric, fp, nil)
}

// algFloor is the smallest stripe grant the algorithm can run with: a fixed
// Wrht group size m is only feasible at wavelength budgets w with
// core.MaxGroupSize(w) >= m; everything else runs on one wavelength.
func algFloor(cfg Config, alg Algorithm) int {
	switch alg {
	case AlgWrht, AlgWrhtUnstriped, AlgWrhtPipelined:
		if m := cfg.WrhtGroupSize; m > 0 {
			w := 1
			for core.MaxGroupSize(w) < m {
				w++
			}
			return w
		}
	}
	return 1
}

func simulateFabric(cfg Config, jobs []JobSpec, policy FabricPolicy, cache *fabricCache, plan FaultPlan, cancel func() error) (FabricResult, error) {
	if err := cfg.Validate(); err != nil {
		return FabricResult{}, err
	}
	pol, err := policy.internal()
	if err != nil {
		return FabricResult{}, err
	}
	inner := make([]fabric.Job, len(jobs))
	for i, spec := range jobs {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("job%d", i)
		}
		alg := spec.Algorithm
		if alg == "" {
			alg = AlgWrht
		}
		if isElectrical(alg) {
			return FabricResult{}, fmt.Errorf("wrht: job %q: electrical algorithm %q cannot share the optical fabric",
				spec.Name, alg)
		}
		if err := spec.Validate(); err != nil {
			return FabricResult{}, err
		}
		bytes, err := jobBytes(cfg, spec)
		if err != nil {
			return FabricResult{}, err
		}
		// Raise the job's minimum to the algorithm's structural floor so a
		// narrow grant can never make the runtime function fail mid-run.
		minW := spec.MinWavelengths
		if f := algFloor(cfg, alg); f > minW {
			minW = f
			if spec.MaxWavelengths != 0 && spec.MaxWavelengths < f {
				return FabricResult{}, fmt.Errorf(
					"wrht: job %q: %s with group size m=%d needs at least %d wavelengths, MaxWavelengths is %d",
					spec.Name, alg, cfg.WrhtGroupSize, f, spec.MaxWavelengths)
			}
		}
		inner[i] = fabric.Job{
			Name:               spec.Name,
			ArrivalSec:         spec.ArrivalSec,
			Priority:           spec.Priority,
			MinWavelengths:     minW,
			MaxWavelengths:     spec.MaxWavelengths,
			Iterations:         spec.Iterations,
			CheckpointEverySec: spec.CheckpointEverySec,
			Runtime:            cache.runtime(cfg, alg, bytes),
		}
	}
	rec := cache.sess.recorder()
	proc := ""
	if rec.Enabled() {
		proc = fabricProcName(cfg, jobs, policy)
		if !plan.Empty() {
			// A faulted run records different tracks than the fault-free run
			// of the same mix; keep their recorder processes disjoint.
			proc += fmt.Sprintf(" · faults %08x", plan.hash())
		}
	}
	var fp faultsPlan
	if !plan.Empty() {
		if fp, err = plan.internal(); err != nil {
			return FabricResult{}, err
		}
	}
	res, err := fabric.SimulateWith(cfg.Optical.Wavelengths, inner, pol, fp,
		fabric.SchedOpts{Rec: rec, Proc: proc, Cancel: cancel})
	if err != nil {
		return FabricResult{}, err
	}
	out := FabricResult{
		Policy:          policy,
		Budget:          res.Budget,
		MakespanSec:     res.MakespanSec,
		MeanQueueSec:    res.MeanQueueSec,
		MaxQueueSec:     res.MaxQueueSec,
		MeanSlowdown:    res.MeanSlowdown,
		Fairness:        res.Fairness,
		Utilization:     res.Utilization,
		PeakWavelengths: res.PeakWavelengths,
		RejectedJobs:    res.RejectedJobs,
		JobFaults:       res.JobFaults,
		Evictions:       res.Evictions,
		Retries:         res.Retries,
		FailedJobs:      res.FailedJobs,
		LostWorkSec:     res.LostWorkSec,
		Availability:    res.Availability,
	}
	for _, j := range res.Jobs {
		out.Jobs = append(out.Jobs, FabricJobResult(j))
	}
	for _, ev := range res.Events {
		out.Events = append(out.Events, FabricEvent{
			TimeSec: ev.TimeSec, Job: ev.Job, Kind: ev.Kind.String(), Wavelengths: ev.Wavelengths,
		})
	}
	return out, nil
}

// fabricProcName names one fabric co-simulation's recorder process. The name
// must be unique per (config, job mix, policy) so concurrent simulations on
// a shared session record to disjoint track sets — that isolation is what
// keeps trace exports byte-deterministic across sweep parallelism.
func fabricProcName(cfg Config, jobs []JobSpec, policy FabricPolicy) string {
	h := fnv.New32a()
	for _, j := range jobs {
		fmt.Fprintf(h, "%s|%s|%d|%g|%d|%d|%s;",
			j.Name, j.Model, j.Bytes, j.ArrivalSec, j.Iterations, j.Priority, j.Algorithm)
	}
	return fmt.Sprintf("fabric %s · %d jobs · N=%d λ=%d · mix %08x",
		policy, len(jobs), cfg.Nodes, cfg.Optical.Wavelengths, h.Sum32())
}

// fabricCache memoizes single-ring simulation results across the jobs of
// one SimulateFabric call, across the policies of CompareFabricPolicies, and
// across the concurrent points of a fabric-mode RunSweep (hence the mutex):
// CommunicationTime is deterministic in (nodes, algorithm, bytes, width), and
// a policy sweep re-prices the same tenants many times. Pricing runs through
// the owning session, so plans, lowered schedules, and substrate simulations
// are additionally shared with every other consumer of the same session
// (different grant widths of one tenant reuse one lowered ring schedule).
type fabricCache struct {
	mu      sync.Mutex
	entries map[fabricCacheKey]*fabricCacheEntry
	sess    *session
	// hits/builds count runtime-curve lookups under mu (a hit may still wait
	// on the entry's once if another worker is computing it — it is a hit of
	// the *entry*, so totals are deterministic for a fixed request set).
	hits, builds int64
}

// Stats returns the cache's cumulative hit/build counters.
func (fc *fabricCache) Stats() (hits, builds int64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.hits, fc.builds
}

// fabricCacheKey embeds the full Config: runtimes depend on every substrate
// parameter (optical rates, overheads, BytesPerElem, …), and the cache now
// outlives a single call via SweepSession.CompareFabricPolicies, so
// under-keying would serve one configuration's runtimes to another.
type fabricCacheKey struct {
	cfg   Config
	alg   Algorithm
	bytes int64
	width int
}

// fabricCacheEntry computes under its own sync.Once so concurrent sweep
// workers requesting the same key share one simulation instead of racing to
// duplicate it (the same pattern as internal/exp's PlanCache).
type fabricCacheEntry struct {
	once sync.Once
	sec  float64
	err  error
}

func newFabricCacheWith(sess *session) *fabricCache {
	return &fabricCache{entries: map[fabricCacheKey]*fabricCacheEntry{}, sess: sess}
}

// runtime prices one all-reduce of the job at stripe budget w via the full
// single-ring simulation path, memoized by (nodes, alg, bytes, w).
func (fc *fabricCache) runtime(cfg Config, alg Algorithm, bytes int64) func(int) (float64, error) {
	return func(w int) (float64, error) {
		key := fabricCacheKey{cfg, alg, bytes, w}
		fc.mu.Lock()
		e, ok := fc.entries[key]
		if !ok {
			e = &fabricCacheEntry{}
			fc.entries[key] = e
			fc.builds++
		} else {
			fc.hits++
		}
		fc.mu.Unlock()
		e.once.Do(func() {
			c := cfg
			c.Optical.Wavelengths = w
			r, _, err := communicationTime(c, alg, bytes, fc.sess)
			if err != nil {
				e.err = err
				return
			}
			if r.Seconds <= 0 || math.IsNaN(r.Seconds) || math.IsInf(r.Seconds, 0) {
				e.err = fmt.Errorf("wrht: degenerate runtime %v at width %d", r.Seconds, w)
				return
			}
			e.sec = r.Seconds
		})
		return e.sec, e.err
	}
}

// CompareFabricPolicies runs the same job mix under every policy, sharing
// one runtime cache across the sweep. Use SweepSession.CompareFabricPolicies
// to additionally share the caches across calls.
func CompareFabricPolicies(cfg Config, jobs []JobSpec, policies []FabricPolicy) ([]FabricResult, error) {
	return compareFabricPolicies(cfg, jobs, policies, newSession().fabric)
}

func compareFabricPolicies(cfg Config, jobs []JobSpec, policies []FabricPolicy, cache *fabricCache) ([]FabricResult, error) {
	out := make([]FabricResult, 0, len(policies))
	for _, p := range policies {
		r, err := simulateFabric(cfg, jobs, p, cache, FaultPlan{}, nil)
		if err != nil {
			return nil, fmt.Errorf("wrht: policy %s: %w", p, err)
		}
		out = append(out, r)
	}
	return out, nil
}
