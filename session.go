package wrht

import (
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/exp"
	"wrht/internal/runner"
)

// session bundles the three memoization layers of the simulate fast path —
// plan → schedule → simulation (internal/exp) — plus the fabric runtime
// cache built on top of them. All layers are safe for concurrent use; a nil
// *session disables caching (methods fall through to direct computation), so
// every pricing helper takes a session and works in both modes.
type session struct {
	plans  *exp.PlanCache
	scheds *exp.ScheduleCache
	sims   *exp.SimCache
	fabric *fabricCache
}

// newSession returns an empty session.
func newSession() *session {
	s := &session{
		plans:  exp.NewPlanCache(),
		scheds: exp.NewScheduleCache(),
		sims:   exp.NewSimCache(),
	}
	s.fabric = newFabricCacheWith(s)
	return s
}

// buildPlan is the session's planBuilder (nil session: plain core.BuildPlan).
func (s *session) buildPlan(n, w int, opts core.Options) (*core.Plan, error) {
	if s == nil {
		return core.BuildPlan(n, w, opts)
	}
	return s.plans.Plan(n, w, opts)
}

// schedule returns the (possibly cached) classed schedule for key. With a
// session the schedule is cache-owned and must never be Released; without
// one the caller owns it.
func (s *session) schedule(key exp.ScheduleKey, build func() (*collective.ClassSchedule, error)) (*collective.ClassSchedule, error) {
	if s == nil {
		return build()
	}
	return s.scheds.Schedule(key, build)
}

// simOptical prices the classed schedule on the WDM ring, memoized by
// (schedule identity, options) when a session is present.
func (s *session) simOptical(key exp.ScheduleKey, cls *collective.ClassSchedule, opts runner.OpticalOptions) (runner.Result, error) {
	if s == nil {
		return runner.RunOpticalClassed(cls, opts)
	}
	return s.sims.Run(exp.SimKey{Sched: key, OptOpts: opts}, func() (runner.Result, error) {
		return runner.RunOpticalClassed(cls, opts)
	})
}

// simElectrical prices the classed schedule on the electrical substrate,
// memoized by (schedule identity, options) when a session is present.
// opts.Network must be nil on the cached path (it is derived from the
// schedule).
func (s *session) simElectrical(key exp.ScheduleKey, cls *collective.ClassSchedule, opts runner.ElectricalOptions) (runner.Result, error) {
	if s == nil || opts.Network != nil {
		return runner.RunElectricalClassed(cls, opts)
	}
	return s.sims.Run(exp.SimKey{Sched: key, Electrical: true, ElecOpts: opts}, func() (runner.Result, error) {
		return runner.RunElectricalClassed(cls, opts)
	})
}

// SweepSession shares the plan, schedule, and simulation caches across any
// number of pricing calls: repeated sweeps, fabric co-simulations, and
// one-off CommunicationTime calls all reuse each other's work, so a
// configuration is planned, lowered, and simulated at most once per session
// lifetime. Construction is cheap; all methods are safe for concurrent use.
// Results are bit-identical to the session-free entry points.
//
// The caches have no eviction: a cached schedule at N=1024 is tens of MB,
// so memory grows with the number of distinct (algorithm, nodes, size)
// configurations the session has seen. Drop the session (and start a fresh
// one) to release everything; for one-shot grids, plain RunSweep already
// scopes the caches to the call.
type SweepSession struct {
	sess *session
}

// NewSweepSession returns an empty session.
func NewSweepSession() *SweepSession {
	return &SweepSession{sess: newSession()}
}

// RunSweep is RunSweep sharing this session's caches.
func (ss *SweepSession) RunSweep(spec SweepSpec) (*SweepResult, error) {
	return runSweep(spec, ss.sess)
}

// CommunicationTime is CommunicationTime sharing this session's caches.
func (ss *SweepSession) CommunicationTime(cfg Config, alg Algorithm, bytes int64) (Result, error) {
	res, _, err := communicationTime(cfg, alg, bytes, ss.sess)
	return res, err
}

// SimulateFabric is SimulateFabric sharing this session's caches (including
// per-tenant runtime curves across calls and policies).
func (ss *SweepSession) SimulateFabric(cfg Config, jobs []JobSpec, policy FabricPolicy) (FabricResult, error) {
	return simulateFabric(cfg, jobs, policy, ss.sess.fabric)
}

// CompareFabricPolicies is CompareFabricPolicies sharing this session's
// caches: per-tenant runtime curves, plans, lowered schedules, and substrate
// simulations persist across calls, so repeated co-simulations of the same
// tenant mixes price warm instead of re-simulating cold.
func (ss *SweepSession) CompareFabricPolicies(cfg Config, jobs []JobSpec, policies []FabricPolicy) ([]FabricResult, error) {
	return compareFabricPolicies(cfg, jobs, policies, ss.sess.fabric)
}

// CacheStats reports the session's cumulative cache effectiveness per layer.
type CacheStats struct {
	PlanHits, PlanBuilds           int64
	ScheduleHits, ScheduleBuilds   int64
	SimulationHits, SimulationRuns int64
}

// Stats returns the session's cumulative cache counters.
func (ss *SweepSession) Stats() CacheStats {
	var st CacheStats
	st.PlanHits, st.PlanBuilds = ss.sess.plans.Stats()
	st.ScheduleHits, st.ScheduleBuilds = ss.sess.scheds.Stats()
	st.SimulationHits, st.SimulationRuns = ss.sess.sims.Stats()
	return st
}
