package wrht

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/exp"
	"wrht/internal/obs"
	"wrht/internal/runner"
)

// session bundles the three memoization layers of the simulate fast path —
// plan → schedule → simulation (internal/exp) — plus the fabric runtime
// cache built on top of them. All layers are safe for concurrent use; a nil
// *session disables caching (methods fall through to direct computation), so
// every pricing helper takes a session and works in both modes.
type session struct {
	plans  *exp.PlanCache
	scheds *exp.ScheduleCache
	sims   *exp.SimCache
	fabric *fabricCache
	// rec is the session's flight recorder; a nil load (the default)
	// disables observability at zero cost beyond the atomic read. The
	// pointer is atomic so SweepSession.Observe is safe to race with
	// in-flight pricing: calls that loaded nil before the swap simply
	// finish unobserved, and everything after records.
	rec atomic.Pointer[obs.Recorder]
}

// recorder returns the session's flight recorder; nil sessions (and
// unobserved sessions) report nil, which every obs method treats as "off".
func (s *session) recorder() *obs.Recorder {
	if s == nil {
		return nil
	}
	return s.rec.Load()
}

// simProc names one substrate simulation's recorder process: the hash of the
// full memoization key (schedule identity + substrate options) guarantees
// distinct sims never share tracks, so concurrent cache fills stay
// byte-deterministic in trace exports.
func (s *session) simProc(key exp.SimKey) string {
	if s.recorder() == nil {
		return ""
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", key)
	substrate := "optical"
	if key.Electrical {
		substrate = "electrical"
	}
	alg := key.Sched.Algorithm
	if alg == "" {
		alg = "wrht" // Wrht plans carry identity in Sig, not the name
	}
	return fmt.Sprintf("price %s %s N=%d elems=%d · key %016x",
		substrate, alg, key.Sched.N, key.Sched.Elems, h.Sum64())
}

// newSession returns an empty session.
func newSession() *session {
	s := &session{
		plans:  exp.NewPlanCache(),
		scheds: exp.NewScheduleCache(),
		sims:   exp.NewSimCache(),
	}
	s.fabric = newFabricCacheWith(s)
	return s
}

// buildPlan is the session's planBuilder (nil session: plain core.BuildPlan).
func (s *session) buildPlan(n, w int, opts core.Options) (*core.Plan, error) {
	if s == nil {
		return core.BuildPlan(n, w, opts)
	}
	return s.plans.Plan(n, w, opts)
}

// schedule returns the (possibly cached) classed schedule for key. With a
// session the schedule is cache-owned and must never be Released; without
// one the caller owns it.
func (s *session) schedule(key exp.ScheduleKey, build func() (*collective.ClassSchedule, error)) (*collective.ClassSchedule, error) {
	if s == nil {
		return build()
	}
	return s.scheds.Schedule(key, build)
}

// simOptical prices the classed schedule on the WDM ring, memoized by
// (schedule identity, options) when a session is present.
func (s *session) simOptical(key exp.ScheduleKey, cls *collective.ClassSchedule, opts runner.OpticalOptions) (runner.Result, error) {
	if s == nil {
		return runner.RunOpticalClassed(cls, opts)
	}
	simKey := exp.SimKey{Sched: key, OptOpts: opts}
	return s.sims.Run(simKey, func() (runner.Result, error) {
		return runner.RunOpticalClassedObserved(cls, opts, s.recorder(), s.simProc(simKey))
	})
}

// simElectrical prices the classed schedule on the electrical substrate,
// memoized by (schedule identity, options) when a session is present.
// opts.Network must be nil on the cached path (it is derived from the
// schedule).
func (s *session) simElectrical(key exp.ScheduleKey, cls *collective.ClassSchedule, opts runner.ElectricalOptions) (runner.Result, error) {
	if s == nil || opts.Network != nil {
		return runner.RunElectricalClassed(cls, opts)
	}
	simKey := exp.SimKey{Sched: key, Electrical: true, ElecOpts: opts}
	return s.sims.Run(simKey, func() (runner.Result, error) {
		return runner.RunElectricalClassedObserved(cls, opts, s.recorder(), s.simProc(simKey))
	})
}

// SweepSession shares the plan, schedule, and simulation caches across any
// number of pricing calls: repeated sweeps, fabric co-simulations, and
// one-off CommunicationTime calls all reuse each other's work, so a
// configuration is planned, lowered, and simulated at most once per session
// lifetime. Construction is cheap; all methods are safe for concurrent use.
// Results are bit-identical to the session-free entry points.
//
// The caches have no eviction: a cached schedule at N=1024 is tens of MB,
// so memory grows with the number of distinct (algorithm, nodes, size)
// configurations the session has seen. Drop the session (and start a fresh
// one) to release everything; for one-shot grids, plain RunSweep already
// scopes the caches to the call.
type SweepSession struct {
	sess *session
}

// NewSweepSession returns an empty session.
func NewSweepSession() *SweepSession {
	return &SweepSession{sess: newSession()}
}

// RunSweep is RunSweep sharing this session's caches.
func (ss *SweepSession) RunSweep(spec SweepSpec) (*SweepResult, error) {
	return runSweep(nil, spec, ss.sess)
}

// CommunicationTime is CommunicationTime sharing this session's caches.
func (ss *SweepSession) CommunicationTime(cfg Config, alg Algorithm, bytes int64) (Result, error) {
	res, _, err := communicationTime(cfg, alg, bytes, ss.sess)
	return res, err
}

// SimulateFabric is SimulateFabric sharing this session's caches (including
// per-tenant runtime curves across calls and policies). Runtime curves are
// fault-independent, so faulty and fault-free runs of the same mix share
// them.
func (ss *SweepSession) SimulateFabric(cfg Config, jobs []JobSpec, policy FabricPolicy, plan ...FaultPlan) (FabricResult, error) {
	fp, err := onePlan(plan)
	if err != nil {
		return FabricResult{}, err
	}
	return simulateFabric(cfg, jobs, policy, ss.sess.fabric, fp, nil)
}

// SimulateFleet is SimulateFleet sharing this session's caches: per-shape
// runtime curves persist across calls and across fabrics with equal ring
// sizes, so sweeping placements or traces over the same fleet prices warm.
func (ss *SweepSession) SimulateFleet(cfg Config, fabrics []FleetFabricSpec, shapes []FleetShape, jobs []FleetJob, opt FleetOptions) (FleetResult, error) {
	return simulateFleet(cfg, fabrics, shapes, jobs, opt, ss.sess.fabric, nil)
}

// CompareFabricPolicies is CompareFabricPolicies sharing this session's
// caches: per-tenant runtime curves, plans, lowered schedules, and substrate
// simulations persist across calls, so repeated co-simulations of the same
// tenant mixes price warm instead of re-simulating cold.
func (ss *SweepSession) CompareFabricPolicies(cfg Config, jobs []JobSpec, policies []FabricPolicy) ([]FabricResult, error) {
	return compareFabricPolicies(cfg, jobs, policies, ss.sess.fabric)
}

// Compare is Compare sharing this session's caches (and, when observed, its
// flight recorder).
func (ss *SweepSession) Compare(cfg Config, algs []Algorithm, bytes int64) ([]Result, error) {
	out := make([]Result, 0, len(algs))
	for _, a := range algs {
		r, _, err := communicationTime(cfg, a, bytes, ss.sess)
		if err != nil {
			return nil, fmt.Errorf("wrht: %s: %w", a, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// CacheStats reports the session's cumulative cache effectiveness per layer.
type CacheStats struct {
	PlanHits, PlanBuilds           int64
	ScheduleHits, ScheduleBuilds   int64
	SimulationHits, SimulationRuns int64
	// FabricRuntimeHits/Builds count the fabric layer's per-tenant runtime
	// curve lookups — the memoized (config, algorithm, bytes, width) →
	// seconds entries that fabric co-simulations price tenants through.
	FabricRuntimeHits, FabricRuntimeBuilds int64
}

// Stats returns the session's cumulative cache counters.
func (ss *SweepSession) Stats() CacheStats {
	var st CacheStats
	st.PlanHits, st.PlanBuilds = ss.sess.plans.Stats()
	st.ScheduleHits, st.ScheduleBuilds = ss.sess.scheds.Stats()
	st.SimulationHits, st.SimulationRuns = ss.sess.sims.Stats()
	st.FabricRuntimeHits, st.FabricRuntimeBuilds = ss.sess.fabric.Stats()
	return st
}
