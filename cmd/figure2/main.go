// Command figure2 regenerates the paper's Figure 2: communication time of
// E-Ring, RD, O-Ring and WRHT for AlexNet, VGG16, ResNet50 and GoogLeNet at
// 128–1024 workers, plus the headline average reductions (the paper's
// "75.76% and 91.86%"). With -extension it also measures the transformer
// workloads (BERT-Large, GPT-2 XL) added beyond the paper.
//
// Usage:
//
//	figure2            # four subplot tables + headline reductions
//	figure2 -csv       # machine-readable series
//	figure2 -summary   # headline reductions only
//	figure2 -extension # include the transformer extension grid
package main

import (
	"flag"
	"fmt"
	"os"

	"wrht"
	"wrht/internal/report"
	"wrht/internal/stats"
)

func main() {
	var (
		csv       = flag.Bool("csv", false, "emit one CSV with all series")
		summary   = flag.Bool("summary", false, "print only the headline reductions")
		extension = flag.Bool("extension", false, "include BERT-Large and GPT-2 XL")
		parallel  = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cells, err := report.Figure2(*parallel)
	if err != nil {
		fail(err)
	}
	if *extension {
		ext, err := report.ExtensionFigure(*parallel)
		if err != nil {
			fail(err)
		}
		cells = append(cells, ext...)
	}

	if *csv {
		tb := stats.NewTable("", "model", "nodes", "algorithm", "seconds")
		for _, c := range cells {
			tb.AddRowf(c.Model, c.Nodes, string(c.Alg), fmt.Sprintf("%.6g", c.Seconds))
		}
		fmt.Print(tb.CSV())
		return
	}

	if !*summary {
		for _, tb := range report.Tables(cells, wrht.PaperAlgorithms()) {
			fmt.Print(tb.String())
			fmt.Println()
		}
	}

	paperCells := cells[:4*4*4] // headline is defined over the paper grid
	r, err := report.Headline(paperCells)
	if err != nil {
		fail(err)
	}
	fmt.Println("Headline reductions (WRHT vs baseline, averaged over 4 models x 4 scales):")
	fmt.Printf("  vs E-Ring:              %6.2f%%\n", 100*r.VsERing)
	fmt.Printf("  vs RD:                  %6.2f%%\n", 100*r.VsRD)
	fmt.Printf("  vs electrical (mean):   %6.2f%%   (paper: 75.76%%)\n", 100*r.VsElectric)
	fmt.Printf("  vs O-Ring:              %6.2f%%   (paper: 91.86%%)\n", 100*r.VsORing)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figure2:", err)
	os.Exit(1)
}
