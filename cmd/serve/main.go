// Command serve runs the overload-safe pricing service: an HTTP/JSON API
// over warm SweepSession caches (internal/serve) with bounded admission
// queues, per-request deadlines, request coalescing, tiered degradation, and
// graceful drain on SIGTERM/SIGINT.
//
// Endpoints: POST /v1/commtime, /v1/fabric, /v1/fleet, /v1/sweep; GET
// /healthz, /readyz, /metricsz.
//
//	go run ./cmd/serve -addr :8080
//	curl -s localhost:8080/v1/commtime -d '{"Nodes":128,"Algorithm":"wrht","Bytes":1048576}'
//
// Overload behavior: a full class queue sheds with 429 + Retry-After in
// microseconds; sustained queue pressure degrades the API tier by tier
// (sweeps first, then fleets) while single-point pricing stays alive;
// per-request deadlines (class default, client-tightenable via
// DeadlineMillis) cancel in-flight simulations at event boundaries. On
// SIGTERM the server stops admitting, finishes every in-flight request,
// and logs the drain outcome before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wrht/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "session cache shards (0 = default)")
	pointWorkers := flag.Int("point-workers", 0, "commtime worker pool (0 = default)")
	pointQueue := flag.Int("point-queue", 0, "commtime queue depth (0 = default)")
	fabricWorkers := flag.Int("fabric-workers", 0, "fabric worker pool (0 = default)")
	fabricQueue := flag.Int("fabric-queue", 0, "fabric queue depth (0 = default)")
	fleetWorkers := flag.Int("fleet-workers", 0, "fleet worker pool (0 = default)")
	fleetQueue := flag.Int("fleet-queue", 0, "fleet queue depth (0 = default)")
	sweepWorkers := flag.Int("sweep-workers", 0, "sweep worker pool (0 = default)")
	sweepQueue := flag.Int("sweep-queue", 0, "sweep queue depth (0 = default)")
	pointDeadline := flag.Duration("point-deadline", 0, "commtime default deadline (0 = default)")
	fabricDeadline := flag.Duration("fabric-deadline", 0, "fabric default deadline (0 = default)")
	fleetDeadline := flag.Duration("fleet-deadline", 0, "fleet default deadline (0 = default)")
	sweepDeadline := flag.Duration("sweep-deadline", 0, "sweep default deadline (0 = default)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight requests on shutdown")
	flag.Parse()

	cfg := serve.Config{
		Shards:      *shards,
		Point:       serve.ClassLimits{Workers: *pointWorkers, Queue: *pointQueue, Deadline: *pointDeadline},
		Fabric:      serve.ClassLimits{Workers: *fabricWorkers, Queue: *fabricQueue, Deadline: *fabricDeadline},
		Fleet:       serve.ClassLimits{Workers: *fleetWorkers, Queue: *fleetQueue, Deadline: *fleetDeadline},
		Sweep:       serve.ClassLimits{Workers: *sweepWorkers, Queue: *sweepQueue, Deadline: *sweepDeadline},
		MaxDeadline: *maxDeadline,
	}
	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serve: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-sigCtx.Done():
	}

	log.Printf("serve: signal received, draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	n, err := srv.Drain(drainCtx)
	if err != nil {
		log.Printf("serve: drain timed out with %d in-flight: %v", n, err)
		_ = httpSrv.Close()
		os.Exit(1)
	}
	log.Printf("serve: drain complete: %d in-flight finished, 0 dropped", n)
	if err := httpSrv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
	}
}
