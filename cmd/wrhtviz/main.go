// Command wrhtviz renders an ASCII wavelength-by-time Gantt chart of an
// all-reduce on the optical ring, using the message-level event simulator.
// It makes the paper's two key mechanisms visible: spatial wavelength reuse
// (several transfers sharing one λ row at the same time) and the barrier vs
// async execution difference.
//
// Usage:
//
//	wrhtviz -nodes 16 -m 3 -bytes 4194304
//	wrhtviz -nodes 16 -alg o-ring -mode async -width 100
package main

import (
	"flag"
	"fmt"
	"os"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/model"
	"wrht/internal/optical"
	"wrht/internal/opticalsim"
	"wrht/internal/ring"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 16, "ring size")
		m      = flag.Int("m", 3, "Wrht group size (for -alg wrht)")
		alg    = flag.String("alg", "wrht", "wrht | o-ring")
		mode   = flag.String("mode", "barrier", "barrier | async")
		bytes  = flag.Int64("bytes", 4<<20, "buffer size in bytes")
		width  = flag.Int("width", 100, "chart width in columns")
		rows   = flag.Int("rows", 16, "max wavelength rows (0 = all)")
		stripe = flag.Bool("stripe", false, "enable wavelength striping for wrht")
	)
	flag.Parse()

	elems := int(*bytes / 4)
	var s *collective.Schedule
	var err error
	switch *alg {
	case "wrht":
		opts := core.Options{M: *m, Policy: core.A2AFormula, Striping: *stripe,
			Cost: model.CostParamsOf(optical.DefaultParams())}
		var plan *core.Plan
		plan, err = core.BuildPlan(*nodes, optical.DefaultParams().Wavelengths, opts)
		if err == nil {
			fmt.Printf("plan: %s\n", plan)
			s, err = plan.Schedule(elems)
		}
	case "o-ring":
		s, err = collective.RingAllReduce(*nodes, elems)
	default:
		err = fmt.Errorf("unknown -alg %q", *alg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrhtviz:", err)
		os.Exit(1)
	}

	simOpts := opticalsim.DefaultOptions()
	if *mode == "async" {
		simOpts.Mode = opticalsim.Async
	}
	res, err := opticalsim.Run(s, simOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrhtviz:", err)
		os.Exit(1)
	}
	topo, err := ring.New(*nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrhtviz:", err)
		os.Exit(1)
	}
	if err := opticalsim.ValidateTimeline(topo, res.Events); err != nil {
		fmt.Fprintln(os.Stderr, "wrhtviz: TIMELINE INVALID:", err)
		os.Exit(1)
	}
	fmt.Printf("%s, %s mode: total %.4g ms\n", s.Algorithm, res.Mode, res.TotalSec*1e3)
	fmt.Print(opticalsim.RenderTimeline(res.Events, *width, *rows))
}
