// Command bench runs the repository's headline performance benchmarks with
// -benchmem and emits a machine-readable report (BENCH_PR9.json by default):
// ns/op, B/op, allocs/op, and every custom metric for the sweep engine, the
// simulator throughput path, the message-level optical simulator, the
// multi-tenant fabric co-simulation (grant-once policies and the elastic
// re-allocation path), the trace-driven fleet placement path, and the
// fault-injection + recovery path.
//
// It is three regression gates in one:
//
//   - allocation gate: committed per-benchmark allocs/op ceilings
//     (cmd/bench/ceilings.json) are checked against the fresh numbers, and
//     any benchmark above its ceiling fails the run;
//   - wall-time gate: committed absolute ns/op bounds
//     (cmd/bench/timegates.json) are hard acceptance limits — e.g.
//     BenchmarkFabricTrace must price its million-event 16-fabric trace in
//     ≤ 10 s regardless of history;
//   - time gate: the fresh ns/op numbers are compared against the previous
//     committed BENCH_*.json (auto-discovered, or -prev), and any headline
//     benchmark more than 25% slower fails the run. Only entries recorded
//     at the same scales (matching name and -short mode) are compared —
//     cross-scale ns/op comparisons would be noise, so a -short CI run
//     checks allocations strictly and reports when no comparable time
//     baseline exists.
//
// CI invokes it in -short mode on every push:
//
//	go run ./cmd/bench -short -benchtime 1x
//
// Regenerate the committed full-scale report (and run the full-scale time
// gate against the previous report) with:
//
//	go run ./cmd/bench -out BENCH_PR9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// headline selects the benchmarks the report covers.
const headline = "BenchmarkServeOverload|BenchmarkSweepEngine|BenchmarkSimulatorThroughput|BenchmarkOpticalsimThroughput|BenchmarkFabricCoSim|BenchmarkFabricElastic|BenchmarkFabricTrace|BenchmarkFabricFaults"

// Result is one benchmark line of the report.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Bench     string   `json:"bench"`
	Short     bool     `json:"short"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	short := flag.Bool("short", false, "run benchmarks in -short mode (CI smoke scales)")
	benchtime := flag.String("benchtime", "2x", "benchtime passed to go test")
	bench := flag.String("bench", headline, "benchmark regex")
	out := flag.String("out", "BENCH_PR9.json", "output JSON path")
	ceilingsPath := flag.String("ceilings", "cmd/bench/ceilings.json", "allocs/op ceilings (empty disables the gate)")
	timegatesPath := flag.String("timegates", "cmd/bench/timegates.json", "absolute ns/op wall-time gates (empty disables the gate)")
	prev := flag.String("prev", "auto", "previous BENCH_*.json to gate ns/op against (auto = newest committed report other than -out; empty disables)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
	if *short {
		args = append(args, "-short")
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fatalf("go test -bench failed: %v", err)
	}
	fmt.Print(string(raw))

	report := Report{Bench: *bench, Short: *short, Benchtime: *benchtime}
	for _, line := range strings.Split(string(raw), "\n") {
		if r, ok := parseLine(line); ok {
			report.Results = append(report.Results, r)
		}
	}
	if len(report.Results) == 0 {
		fatalf("no benchmark results parsed")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(report.Results), *out)

	if *ceilingsPath != "" {
		if err := checkCeilings(*ceilingsPath, *bench, report.Results); err != nil {
			fatalf("%v", err)
		}
	}
	if *timegatesPath != "" {
		if err := checkTimeGates(*timegatesPath, report.Results); err != nil {
			fatalf("%v", err)
		}
	}
	if *prev != "" {
		if err := checkTimes(*prev, *out, report); err != nil {
			fatalf("%v", err)
		}
	}
}

// checkTimeGates fails when any result exceeds its committed absolute
// wall-time gate (ns/op). Unlike the relative time gate against the
// previous report, these are hard acceptance bounds — e.g.
// BenchmarkFabricTrace must price its million-event trace in ≤ 10 s
// regardless of history. Keys with no matching result are ignored (the
// short and full scales carry different names), and a missing gates file
// only disables this gate when -timegates ” is passed explicitly.
func checkTimeGates(path string, results []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read time gates %s: %w", path, err)
	}
	var gates map[string]float64
	if err := json.Unmarshal(data, &gates); err != nil {
		return fmt.Errorf("parse time gates %s: %w", path, err)
	}
	for _, r := range results {
		gate, ok := gates[r.Name]
		if !ok {
			continue
		}
		if r.NsPerOp > gate {
			return fmt.Errorf("wall-time gate: %s at %.3gs/op exceeds the committed bound %.3gs/op",
				r.Name, r.NsPerOp/1e9, gate/1e9)
		}
		fmt.Fprintf(os.Stderr, "bench: wall-time gate: %s %.3gs/op <= %.3gs/op\n",
			r.Name, r.NsPerOp/1e9, gate/1e9)
	}
	return nil
}

// maxTimeRegression is the time gate's threshold: a headline benchmark more
// than 25% slower than the previous committed report fails the run.
const maxTimeRegression = 1.25

// findPrevReport resolves -prev auto-discovery: the newest committed
// BENCH_PR*.json (highest PR number) that is not the output path.
func findPrevReport(out string) string {
	matches, _ := filepath.Glob("BENCH_PR*.json")
	type cand struct {
		path string
		n    int
	}
	var cands []cand
	re := regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)
	outAbs, _ := filepath.Abs(out)
	for _, m := range matches {
		mm := re.FindStringSubmatch(filepath.Base(m))
		if mm == nil {
			continue
		}
		if abs, _ := filepath.Abs(m); abs == outAbs {
			continue
		}
		n, _ := strconv.Atoi(mm[1])
		cands = append(cands, cand{m, n})
	}
	if len(cands) == 0 {
		return ""
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].n > cands[j].n })
	return cands[0].path
}

// checkTimes fails when any fresh headline result is more than 25% slower
// (ns/op) than the same-named entry of the previous report. Entries are only
// comparable when both runs used the same -short mode (benchmark names carry
// the scale, so a mode mismatch simply yields no comparable entries).
func checkTimes(prev, out string, fresh Report) error {
	if prev == "auto" {
		prev = findPrevReport(out)
		if prev == "" {
			fmt.Fprintln(os.Stderr, "bench: time gate: no previous BENCH_PR*.json found, skipping")
			return nil
		}
	}
	data, err := os.ReadFile(prev)
	if err != nil {
		return fmt.Errorf("read previous report %s: %w", prev, err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse previous report %s: %w", prev, err)
	}
	if base.Short != fresh.Short {
		fmt.Fprintf(os.Stderr, "bench: time gate: %s was recorded with short=%v, this run is short=%v; no comparable entries\n",
			prev, base.Short, fresh.Short)
		return nil
	}
	baseline := map[string]float64{}
	for _, r := range base.Results {
		baseline[r.Name] = r.NsPerOp
	}
	compared := 0
	for _, r := range fresh.Results {
		was, ok := baseline[r.Name]
		if !ok || was <= 0 {
			continue
		}
		compared++
		ratio := r.NsPerOp / was
		if ratio > maxTimeRegression {
			return fmt.Errorf("time regression: %s at %.0f ns/op is %.2fx the previous %.0f ns/op in %s (threshold %.2fx)",
				r.Name, r.NsPerOp, ratio, was, prev, maxTimeRegression)
		}
		fmt.Fprintf(os.Stderr, "bench: time gate: %s %.2fx vs %s\n", r.Name, ratio, prev)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "bench: time gate: no entries of %s match this run\n", prev)
	}
	return nil
}

// gomaxprocsSuffix strips the trailing "-8"-style processor-count suffix go
// test appends to benchmark names, so ceilings are machine-independent.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine parses one "BenchmarkX/sub-8  N  123 ns/op  4 B/op ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// checkCeilings fails when any result exceeds its committed allocs/op
// ceiling. Ceiling keys are full benchmark names without the GOMAXPROCS
// suffix; keys with no matching result are ignored (full-scale entries
// during a -short run and vice versa).
func checkCeilings(path, bench string, results []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read ceilings %s: %w", path, err)
	}
	var ceilings map[string]float64
	if err := json.Unmarshal(data, &ceilings); err != nil {
		return fmt.Errorf("parse ceilings %s: %w", path, err)
	}
	checked := 0
	for _, r := range results {
		ceiling, ok := ceilings[r.Name]
		if !ok {
			continue
		}
		checked++
		if r.AllocsPerOp > ceiling {
			return fmt.Errorf("allocation regression: %s at %.0f allocs/op exceeds the committed ceiling %.0f",
				r.Name, r.AllocsPerOp, ceiling)
		}
		fmt.Fprintf(os.Stderr, "bench: %s %.0f allocs/op <= ceiling %.0f\n", r.Name, r.AllocsPerOp, ceiling)
	}
	if checked == 0 {
		return fmt.Errorf("ceiling gate matched no benchmark (ran %q); the gate would be vacuous — pass -ceilings '' to skip it for ad-hoc selections", bench)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
