// Command bench runs the repository's headline performance benchmarks with
// -benchmem and emits a machine-readable report (BENCH_PR3.json by default):
// ns/op, B/op, allocs/op, and every custom metric for the sweep engine, the
// simulator throughput path, the message-level optical simulator, and the
// multi-tenant fabric co-simulation.
//
// It is also the allocation-regression gate: committed per-benchmark
// allocs/op ceilings (cmd/bench/ceilings.json) are checked against the fresh
// numbers, and any benchmark above its ceiling fails the run. CI invokes it
// in -short mode on every push:
//
//	go run ./cmd/bench -short -benchtime 1x
//
// Regenerate the committed full-scale report with:
//
//	go run ./cmd/bench -out BENCH_PR3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// headline selects the benchmarks the report covers.
const headline = "BenchmarkSweepEngine|BenchmarkSimulatorThroughput|BenchmarkOpticalsimThroughput|BenchmarkFabricCoSim"

// Result is one benchmark line of the report.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Bench     string   `json:"bench"`
	Short     bool     `json:"short"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	short := flag.Bool("short", false, "run benchmarks in -short mode (CI smoke scales)")
	benchtime := flag.String("benchtime", "2x", "benchtime passed to go test")
	bench := flag.String("bench", headline, "benchmark regex")
	out := flag.String("out", "BENCH_PR3.json", "output JSON path")
	ceilingsPath := flag.String("ceilings", "cmd/bench/ceilings.json", "allocs/op ceilings (empty disables the gate)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
	if *short {
		args = append(args, "-short")
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fatalf("go test -bench failed: %v", err)
	}
	fmt.Print(string(raw))

	report := Report{Bench: *bench, Short: *short, Benchtime: *benchtime}
	for _, line := range strings.Split(string(raw), "\n") {
		if r, ok := parseLine(line); ok {
			report.Results = append(report.Results, r)
		}
	}
	if len(report.Results) == 0 {
		fatalf("no benchmark results parsed")
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(report.Results), *out)

	if *ceilingsPath != "" {
		if err := checkCeilings(*ceilingsPath, *bench, report.Results); err != nil {
			fatalf("%v", err)
		}
	}
}

// gomaxprocsSuffix strips the trailing "-8"-style processor-count suffix go
// test appends to benchmark names, so ceilings are machine-independent.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine parses one "BenchmarkX/sub-8  N  123 ns/op  4 B/op ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// checkCeilings fails when any result exceeds its committed allocs/op
// ceiling. Ceiling keys are full benchmark names without the GOMAXPROCS
// suffix; keys with no matching result are ignored (full-scale entries
// during a -short run and vice versa).
func checkCeilings(path, bench string, results []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read ceilings %s: %w", path, err)
	}
	var ceilings map[string]float64
	if err := json.Unmarshal(data, &ceilings); err != nil {
		return fmt.Errorf("parse ceilings %s: %w", path, err)
	}
	checked := 0
	for _, r := range results {
		ceiling, ok := ceilings[r.Name]
		if !ok {
			continue
		}
		checked++
		if r.AllocsPerOp > ceiling {
			return fmt.Errorf("allocation regression: %s at %.0f allocs/op exceeds the committed ceiling %.0f",
				r.Name, r.AllocsPerOp, ceiling)
		}
		fmt.Fprintf(os.Stderr, "bench: %s %.0f allocs/op <= ceiling %.0f\n", r.Name, r.AllocsPerOp, ceiling)
	}
	if checked == 0 {
		return fmt.Errorf("ceiling gate matched no benchmark (ran %q); the gate would be vacuous — pass -ceilings '' to skip it for ad-hoc selections", bench)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
