// Command wrhtlint runs the repository's static-analysis suite
// (internal/analysis): four analyzers enforcing the determinism, zero-alloc,
// context-threading, and flight-recorder invariants that the simulator's
// reproducibility rests on.
//
// Usage:
//
//	go run ./cmd/wrhtlint ./...
//	go run ./cmd/wrhtlint ./internal/sim ./internal/wdm/...
//	go run ./cmd/wrhtlint -list
//
// Diagnostics print as file:line:col: [analyzer] message; the exit status is
// nonzero iff any diagnostic fired. Suppress a single line with
// //wrht:allow <analyzer> -- <reason> (the reason is mandatory).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wrht/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "directory inside the module to lint")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wrhtlint [-C dir] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.RunModule(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wrhtlint: %v\n", err)
		os.Exit(2)
	}
	root, err := analysis.ModuleRoot(*dir)
	if err != nil {
		root = ""
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wrhtlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
