// Command sweep runs the ablation parameter sweeps behind EXPERIMENTS.md:
// Wrht's group size m, the wavelength budget w, and the message-size
// crossover against the striped optical ring.
//
// Usage:
//
//	sweep -kind m -nodes 1024
//	sweep -kind wavelengths -nodes 1024 -model VGG16
//	sweep -kind size -nodes 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"wrht"
	"wrht/internal/stats"
)

func main() {
	var (
		kind      = flag.String("kind", "m", "sweep kind: m | wavelengths | size")
		nodes     = flag.Int("nodes", 1024, "number of workers")
		modelName = flag.String("model", "VGG16", "catalog model")
	)
	flag.Parse()

	m := wrht.MustModel(*modelName)
	switch *kind {
	case "m":
		sweepGroupSize(*nodes, m)
	case "wavelengths":
		sweepWavelengths(*nodes, m)
	case "size":
		sweepSize(*nodes)
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		os.Exit(1)
	}
}

func sweepGroupSize(nodes int, m wrht.ModelSpec) {
	cfg := wrht.DefaultConfig(nodes)
	tb := stats.NewTable(
		fmt.Sprintf("Wrht group-size sweep: %s on %d nodes (w=%d)", m.Name, nodes, cfg.Optical.Wavelengths),
		"m", "steps", "tree stripe", "time", "vs optimizer")
	opt, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, m.Bytes)
	must(err)
	for _, gs := range []int{2, 3, 5, 9, 17, 33, 65, 129} {
		c := cfg
		c.WrhtGroupSize = gs
		r, err := wrht.CommunicationTime(c, wrht.AlgWrht, m.Bytes)
		if err != nil {
			continue // infeasible for this w
		}
		p, err := wrht.Plan(c)
		must(err)
		tb.AddRow(fmt.Sprintf("%d", gs), fmt.Sprintf("%d", p.Steps),
			fmt.Sprintf("x%d", p.TreeStripe),
			stats.FormatSeconds(r.Seconds),
			fmt.Sprintf("%.2fx", r.Seconds/opt.Seconds))
	}
	autoPlan, err := wrht.Plan(cfg)
	must(err)
	fmt.Print(tb.String())
	fmt.Printf("optimizer choice: m=%d, %s (%s)\n",
		autoPlan.GroupSize, stats.FormatSeconds(opt.Seconds), autoPlan.Description)
}

func sweepWavelengths(nodes int, m wrht.ModelSpec) {
	tb := stats.NewTable(
		fmt.Sprintf("wavelength sweep: %s on %d nodes", m.Name, nodes),
		"w", "wrht", "o-ring", "reduction")
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := wrht.DefaultConfig(nodes)
		cfg.Optical.Wavelengths = w
		rw, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, m.Bytes)
		must(err)
		ro, err := wrht.CommunicationTime(cfg, wrht.AlgORing, m.Bytes)
		must(err)
		tb.AddRow(fmt.Sprintf("%d", w),
			stats.FormatSeconds(rw.Seconds),
			stats.FormatSeconds(ro.Seconds),
			fmt.Sprintf("%.1f%%", 100*(1-rw.Seconds/ro.Seconds)))
	}
	fmt.Print(tb.String())
}

func sweepSize(nodes int) {
	cfg := wrht.DefaultConfig(nodes)
	tb := stats.NewTable(
		fmt.Sprintf("message-size sweep on %d nodes: Wrht vs striped optical ring", nodes),
		"bytes", "wrht", "o-ring-striped", "winner")
	for _, bytes := range []int64{64 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30} {
		rw, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, bytes)
		must(err)
		rs, err := wrht.CommunicationTime(cfg, wrht.AlgORingStriped, bytes)
		must(err)
		winner := "wrht"
		if rs.Seconds < rw.Seconds {
			winner = "o-ring-striped"
		}
		tb.AddRow(stats.FormatBytes(bytes),
			stats.FormatSeconds(rw.Seconds),
			stats.FormatSeconds(rs.Seconds),
			winner)
	}
	fmt.Print(tb.String())
	fmt.Println("(the paper's O-Ring baseline is unstriped; this ablation bounds any ring schedule)")
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
