// Command sweep runs the ablation parameter sweeps behind EXPERIMENTS.md:
// Wrht's group size m, the wavelength budget w, and the message-size
// crossover against the striped optical ring. The canonical grids live in
// internal/report (shared with cmd/experiments, so EXPERIMENTS.md cannot
// drift from what this command prints) and ride the concurrent experiment
// engine (wrht.RunSweep): points are priced in parallel with a shared plan
// cache while the output order stays deterministic.
//
// Usage:
//
//	sweep -kind m -nodes 1024
//	sweep -kind wavelengths -nodes 1024 -model VGG16
//	sweep -kind size -nodes 1024
//	sweep -kind scaling -model GoogLeNet
package main

import (
	"flag"
	"fmt"
	"os"

	"wrht"
	"wrht/internal/report"
)

func main() {
	var (
		kind      = flag.String("kind", "m", "sweep kind: m | wavelengths | size | scaling")
		nodes     = flag.Int("nodes", 1024, "number of workers")
		modelName = flag.String("model", "VGG16", "catalog model")
		parallel  = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	switch *kind {
	case "m":
		tb, summary, err := report.GroupSizeSweep(wrht.DefaultConfig(*nodes), *modelName, *parallel)
		must(err)
		fmt.Print(tb.String())
		fmt.Println(summary)
	case "wavelengths":
		tb, err := report.WavelengthSweep(*nodes, *modelName, *parallel)
		must(err)
		fmt.Print(tb.String())
	case "size":
		tb, err := report.SizeSweep(*nodes, *parallel)
		must(err)
		fmt.Print(tb.String())
		fmt.Println("(the paper's O-Ring baseline is unstriped; this ablation bounds any ring schedule)")
	case "scaling":
		tb, err := report.ScalingSweep(*modelName, *parallel)
		must(err)
		fmt.Print(tb.String())
		fmt.Println("(N up to 65536 prices through the exact simulate paths; symmetry-aware classed pricing makes each point ~O(N))")
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
