// Command sweep runs the ablation parameter sweeps behind EXPERIMENTS.md:
// Wrht's group size m, the wavelength budget w, and the message-size
// crossover against the striped optical ring. The canonical grids live in
// internal/report (shared with cmd/experiments, so EXPERIMENTS.md cannot
// drift from what this command prints) and ride the concurrent experiment
// engine (wrht.RunSweep): points are priced in parallel with a shared plan
// cache while the output order stays deterministic.
//
// Usage:
//
//	sweep -kind m -nodes 1024
//	sweep -kind wavelengths -nodes 1024 -model VGG16
//	sweep -kind size -nodes 1024
//	sweep -kind scaling -model GoogLeNet
//	sweep -kind size -trace trace.json -metrics metrics.md
//
// -trace writes the sweep's flight-recorder timeline as Chrome trace-event
// JSON (open in ui.perfetto.dev); -metrics writes the observability snapshot
// (cache layers, pricer counters) as markdown, or CSV with a .csv suffix.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wrht"
	"wrht/internal/report"
)

func main() {
	var (
		kind      = flag.String("kind", "m", "sweep kind: m | wavelengths | size | scaling")
		nodes     = flag.Int("nodes", 1024, "number of workers")
		modelName = flag.String("model", "VGG16", "catalog model")
		parallel  = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		tracePath = flag.String("trace", "", "write Perfetto trace-event JSON to this file")
		metrics   = flag.String("metrics", "", "write a metrics snapshot to this file (.csv for CSV, else markdown)")
	)
	flag.Parse()

	ss := wrht.NewSweepSession()
	var ob *wrht.Observer
	if *tracePath != "" || *metrics != "" {
		ob = ss.Observe()
	}

	switch *kind {
	case "m":
		tb, summary, err := report.GroupSizeSweep(ss, wrht.DefaultConfig(*nodes), *modelName, *parallel)
		must(err)
		fmt.Print(tb.String())
		fmt.Println(summary)
	case "wavelengths":
		tb, err := report.WavelengthSweep(ss, *nodes, *modelName, *parallel)
		must(err)
		fmt.Print(tb.String())
	case "size":
		tb, err := report.SizeSweep(ss, *nodes, *parallel)
		must(err)
		fmt.Print(tb.String())
		fmt.Println("(the paper's O-Ring baseline is unstriped; this ablation bounds any ring schedule)")
	case "scaling":
		tb, err := report.ScalingSweep(ss, *modelName, *parallel)
		must(err)
		fmt.Print(tb.String())
		fmt.Println("(N up to 65536 prices through the exact simulate paths; symmetry-aware classed pricing makes each point ~O(N))")
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	if *tracePath != "" {
		must(ob.WriteTraceFile(*tracePath))
		fmt.Printf("trace: %s (open in ui.perfetto.dev)\n", *tracePath)
	}
	if *metrics != "" {
		snap := ss.Snapshot()
		body := snap.Markdown()
		if strings.HasSuffix(*metrics, ".csv") {
			body = snap.CSV()
		}
		must(os.WriteFile(*metrics, []byte(body), 0o644))
		fmt.Printf("metrics: %s\n", *metrics)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
