// Command fabricsim co-simulates concurrent all-reduce jobs sharing one WDM
// optical ring fabric, sweeping tenant counts and wavelength-partitioning
// policies. Job mixes are generated deterministically from -seed, so every
// reported number is reproducible.
//
// Usage:
//
//	fabricsim                           # 8 jobs, all policies, 64 nodes
//	fabricsim -jobs 16 -policy priority -detail
//	fabricsim -sweep 2,4,8,16 -format csv
//	fabricsim -seed 7 -nodes 128 -wavelengths 32
//	fabricsim -policy elastic -reconfig 2
//	fabricsim -scenario churn           # departure-heavy mix: elastic shines
//	fabricsim -scenario churn -trace churn.json -metrics churn.md
//	fabricsim -scenario trace           # trace-driven fleet placement
//	fabricsim -scenario trace -fabrics 8 -trace-jobs 20000 -trace-kind heavy-tail
//	fabricsim -scenario trace -placement priority-aware -detail
//	fabricsim -scenario faults          # fault injection, all recovery policies
//	fabricsim -scenario faults -mtbf 20 -mttr 2 -recovery migrate
//
// -scenario trace co-simulates a datacenter of heterogeneous fabrics fed by
// a seeded synthetic arrival trace (wrht.SimulateFleet): -fabrics sizes the
// fleet, -trace-kind picks the arrival process (poisson, diurnal, or
// heavy-tail bursts), -trace-jobs its length, and -placement the routing
// policy (least-loaded, best-fit, priority-aware, or all). Traces above
// -lite-over jobs run in aggregate-only lite mode.
//
// -scenario faults replays the same fleet trace under a seeded failure
// model — wavelength darkening at -mtbf/-mttr (milliseconds), transient
// job crashes at 2x the wavelength MTBF (jobs checkpoint every -checkpoint
// ms of service and roll back to the last checkpoint), and whole-fabric
// outages at 10x MTBF with 4x MTTR repairs — once per -recovery policy
// (fail-fast | retry | migrate | all). Faulted runs populate the
// fabric.faults.* recorder counters in -metrics and mark dark-wavelength
// spans in the -trace timeline.
//
// -trace writes the co-simulation's flight-recorder timeline — jobs as
// tracks with admit/preempt/reconfig markers and run/settle spans,
// queue-depth and lit-wavelength counter tracks, and one occupancy lane per
// wavelength — as Chrome trace-event JSON for ui.perfetto.dev; -metrics
// writes the observability snapshot (cache layers, event counters,
// per-wavelength busy time) as markdown, or CSV with a .csv suffix.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"wrht"
	"wrht/internal/report"
	"wrht/internal/stats"
)

func main() {
	var (
		jobs        = flag.Int("jobs", 8, "number of concurrent tenant jobs")
		nodes       = flag.Int("nodes", 64, "workers on the shared ring")
		wavelengths = flag.Int("wavelengths", 64, "fabric-wide wavelength budget")
		policy      = flag.String("policy", "all", "static | first-fit | priority | elastic | all")
		partitions  = flag.Int("partitions", 0, "shares for the static policy (0 = default 4, clamped to the budget)")
		reconfigUs  = flag.Float64("reconfig", 2, "elastic reconfiguration (switch settling) delay [µs]")
		scenario    = flag.String("scenario", "mixed", "mixed | churn (departure-heavy single fabric) | trace (trace-driven fleet placement) | faults (fault injection + recovery)")
		fabrics     = flag.Int("fabrics", 4, "fleet size for -scenario trace/faults")
		placement   = flag.String("placement", "all", "least-loaded | best-fit | priority-aware | all (-scenario trace/faults)")
		traceKind   = flag.String("trace-kind", "heavy-tail", "poisson | diurnal | heavy-tail (-scenario trace/faults)")
		traceJobs   = flag.Int("trace-jobs", 4000, "arrival-trace length for -scenario trace/faults")
		mtbfMs      = flag.Float64("mtbf", 50, "mean time between wavelength faults [ms] (-scenario faults; job faults 2x, fabric outages 10x)")
		mttrMs      = flag.Float64("mttr", 5, "mean wavelength repair time [ms] (-scenario faults; fabric repairs 4x)")
		recovery    = flag.String("recovery", "all", "fail-fast | retry | migrate | all (-scenario faults)")
		ckptMs      = flag.Float64("checkpoint", 20, "per-job checkpoint interval [ms of service] for -scenario faults (0 = no checkpointing)")
		liteOver    = flag.Int("lite-over", 10000, "use aggregate-only lite stats above this many trace jobs")
		seed        = flag.Int64("seed", 1, "deterministic job-mix seed")
		gapMs       = flag.Float64("gap", 2, "mean inter-arrival gap [ms]")
		sweep       = flag.String("sweep", "", "comma-separated job counts to sweep (overrides -jobs)")
		format      = flag.String("format", "table", "table | markdown | csv")
		detail      = flag.Bool("detail", false, "also print per-job outcomes and the event trace")
		tracePath   = flag.String("trace", "", "write Perfetto trace-event JSON to this file")
		metrics     = flag.String("metrics", "", "write a metrics snapshot to this file (.csv for CSV, else markdown)")
	)
	flag.Parse()

	cfg := wrht.DefaultConfig(*nodes)
	cfg.Optical.Wavelengths = *wavelengths
	switch *format {
	case "table", "markdown", "csv":
	default:
		must(fmt.Errorf("unknown format %q (want table, markdown, or csv)", *format))
	}
	policies, err := selectPolicies(*policy, *partitions, *reconfigUs*1e-6)
	must(err)

	counts := []int{*jobs}
	if *sweep != "" {
		counts, err = parseCounts(*sweep)
		must(err)
	}

	ss := wrht.NewSweepSession()
	var ob *wrht.Observer
	if *tracePath != "" || *metrics != "" {
		ob = ss.Observe()
	}

	if *scenario == "trace" || *scenario == "faults" {
		ff := fleetFlags{
			fabrics: *fabrics, placement: *placement, kind: *traceKind,
			jobs: *traceJobs, seed: *seed, gapMs: *gapMs, liteOver: *liteOver,
			reconfigSec: *reconfigUs * 1e-6, format: *format, detail: *detail,
		}
		if *scenario == "faults" {
			must(runFaults(ss, cfg, ff, *mtbfMs*1e-3, *mttrMs*1e-3, *ckptMs*1e-3, *recovery))
		} else {
			must(runFleet(ss, cfg, ff))
		}
	} else {
		for _, n := range counts {
			var mix []wrht.JobSpec
			switch *scenario {
			case "mixed":
				mix = generateJobs(n, *seed, *gapMs, *wavelengths)
			case "churn":
				mix = generateChurnJobs(n, *seed, *gapMs, *wavelengths)
			default:
				must(fmt.Errorf("unknown scenario %q (want mixed, churn, trace, or faults)", *scenario))
			}
			results, err := ss.CompareFabricPolicies(cfg, mix, policies)
			must(err)
			title := fmt.Sprintf("shared fabric (%s): %d jobs on %d nodes, %d wavelengths (seed %d)",
				*scenario, n, *nodes, *wavelengths, *seed)
			render(report.FabricPolicyTable(title, results), *format)
			if *detail {
				for _, res := range results {
					render(report.FabricJobsTable(res), *format)
					render(traceTable(res), *format)
				}
			}
		}
	}

	if *tracePath != "" {
		must(ob.WriteTraceFile(*tracePath))
		fmt.Printf("trace: %s (open in ui.perfetto.dev)\n", *tracePath)
	}
	if *metrics != "" {
		snap := ss.Snapshot()
		body := snap.Markdown()
		if strings.HasSuffix(*metrics, ".csv") {
			body = snap.CSV()
		}
		must(os.WriteFile(*metrics, []byte(body), 0o644))
		fmt.Printf("metrics: %s\n", *metrics)
	}
}

// fleetFlags bundles the -scenario trace knobs.
type fleetFlags struct {
	fabrics     int
	placement   string
	kind        string
	jobs        int
	seed        int64
	gapMs       float64
	liteOver    int
	reconfigSec float64
	format      string
	detail      bool
}

// genFleet builds a deterministic heterogeneous fleet of n fabrics by
// cycling three pod classes: big (32 nodes, 16 λ), mid (16 nodes, 8 λ),
// and edge (16 nodes, 4 λ, cheap migration).
func genFleet(n int, reconfigSec float64) []wrht.FleetFabricSpec {
	classes := []wrht.FleetFabricSpec{
		{Nodes: 32, Wavelengths: 16, MigrationCostSec: 20e-3},
		{Nodes: 16, Wavelengths: 8, MigrationCostSec: 10e-3},
		{Nodes: 16, Wavelengths: 4, MigrationCostSec: 5e-3},
	}
	out := make([]wrht.FleetFabricSpec, n)
	for i := range out {
		out[i] = classes[i%len(classes)]
		out[i].Name = fmt.Sprintf("pod%02d", i)
		out[i].ReconfigDelaySec = reconfigSec * float64(1+i%len(classes))
	}
	return out
}

// runFleet executes -scenario trace: a seeded synthetic arrival trace
// placed across a heterogeneous fleet under one or all placement policies.
func runFleet(ss *wrht.SweepSession, cfg wrht.Config, ff fleetFlags) error {
	var placements []string
	switch ff.placement {
	case "all":
		placements = []string{wrht.FleetLeastLoaded, wrht.FleetBestFit, wrht.FleetPriorityAware}
	case wrht.FleetLeastLoaded, wrht.FleetBestFit, wrht.FleetPriorityAware:
		placements = []string{ff.placement}
	default:
		return fmt.Errorf("unknown placement %q", ff.placement)
	}
	fleet := genFleet(ff.fabrics, ff.reconfigSec)
	shapes := report.FleetChurnShapes()
	jobs, err := wrht.GenerateFleetTrace(wrht.FleetTraceSpec{
		Kind: ff.kind, Jobs: ff.jobs, Seed: ff.seed, MeanGapSec: ff.gapMs * 1e-3,
		NumShapes: len(shapes), NumFabrics: ff.fabrics, MaxWidth: 8,
	})
	if err != nil {
		return err
	}
	lite := ff.jobs > ff.liteOver
	var results []wrht.FleetResult
	for _, placement := range placements {
		res, err := ss.SimulateFleet(cfg, fleet, shapes, jobs,
			wrht.FleetOptions{Placement: placement, Lite: lite})
		if err != nil {
			return fmt.Errorf("placement %s: %w", placement, err)
		}
		results = append(results, res)
	}
	mode := "full"
	if lite {
		mode = "lite"
	}
	title := fmt.Sprintf("fleet (%s trace, %s stats): %d jobs over %d fabrics (seed %d)",
		ff.kind, mode, ff.jobs, ff.fabrics, ff.seed)
	render(report.FleetPlacementTable(title, results), ff.format)
	if ff.detail {
		for _, res := range results {
			render(report.FleetFabricTable(res), ff.format)
		}
	}
	return nil
}

// runFaults executes -scenario faults: the -scenario trace fleet replayed
// under a seeded failure model (wavelength darkening at -mtbf/-mttr, job
// crashes at 2x the wavelength MTBF, whole-fabric outages at 10x MTBF with
// 4x MTTR repairs), once per recovery policy. Faults span the first three
// quarters of the arrival trace so recovered jobs drain inside it.
func runFaults(ss *wrht.SweepSession, cfg wrht.Config, ff fleetFlags, mtbfSec, mttrSec, ckptSec float64, recovery string) error {
	var recoveries []string
	switch recovery {
	case "all":
		recoveries = []string{wrht.RecoveryFailFast, wrht.RecoveryRetrySameFabric, wrht.RecoveryMigrateOnFailure}
	case wrht.RecoveryFailFast, wrht.RecoveryRetrySameFabric, wrht.RecoveryMigrateOnFailure:
		recoveries = []string{recovery}
	default:
		return fmt.Errorf("unknown recovery %q (want fail-fast, retry, migrate, or all)", recovery)
	}
	placement := ff.placement
	if placement == "all" {
		placement = wrht.FleetLeastLoaded
	}
	fleet := genFleet(ff.fabrics, ff.reconfigSec)
	shapes := report.FleetChurnShapes()
	jobs, err := wrht.GenerateFleetTrace(wrht.FleetTraceSpec{
		Kind: ff.kind, Jobs: ff.jobs, Seed: ff.seed, MeanGapSec: ff.gapMs * 1e-3,
		NumShapes: len(shapes), NumFabrics: ff.fabrics, MaxWidth: 8,
	})
	if err != nil {
		return err
	}
	span := 0.0
	for i := range jobs {
		jobs[i].CheckpointEverySec = ckptSec
		if jobs[i].ArrivalSec > span {
			span = jobs[i].ArrivalSec
		}
	}
	horizon := 0.75 * span
	if horizon <= 0 {
		horizon = 1
	}
	plan := wrht.FaultPlan{
		Seed:              ff.seed,
		HorizonSec:        horizon,
		WavelengthMTBFSec: mtbfSec,
		WavelengthMTTRSec: mttrSec,
		JobFaultMTBFSec:   2 * mtbfSec,
		FabricMTBFSec:     10 * mtbfSec,
		FabricMTTRSec:     4 * mttrSec,
	}
	lite := ff.jobs > ff.liteOver
	var rows []report.FleetRecoveryRow
	var results []wrht.FleetResult
	for _, rec := range recoveries {
		res, err := ss.SimulateFleet(cfg, fleet, shapes, jobs,
			wrht.FleetOptions{Placement: placement, Lite: lite, Faults: plan, Recovery: rec})
		if err != nil {
			return fmt.Errorf("recovery %s: %w", rec, err)
		}
		rows = append(rows, report.FleetRecoveryRow{
			Recovery: rec, Rate: "1.0x", SpanSec: span, Result: res,
		})
		results = append(results, res)
	}
	title := fmt.Sprintf(
		"fleet under faults (%s trace, %s placement): %d jobs over %d fabrics, λ MTBF %s / MTTR %s (seed %d)",
		ff.kind, placement, ff.jobs, ff.fabrics,
		stats.FormatSeconds(mtbfSec), stats.FormatSeconds(mttrSec), ff.seed)
	render(report.FleetRecoveryTable(title, rows), ff.format)
	if ff.detail {
		for _, res := range results {
			render(report.FleetFabricTable(res), ff.format)
		}
	}
	return nil
}

// selectPolicies resolves the -policy flag.
func selectPolicies(name string, partitions int, reconfigSec float64) ([]wrht.FabricPolicy, error) {
	switch name {
	case "all":
		pols := wrht.FabricPolicies()
		for i := range pols {
			switch pols[i].Kind {
			case wrht.FabricStatic:
				pols[i].Partitions = partitions
			case wrht.FabricElastic:
				pols[i].ReconfigDelaySec = reconfigSec
			}
		}
		return pols, nil
	case wrht.FabricStatic:
		return []wrht.FabricPolicy{{Kind: wrht.FabricStatic, Partitions: partitions}}, nil
	case wrht.FabricElastic:
		return []wrht.FabricPolicy{{Kind: wrht.FabricElastic, ReconfigDelaySec: reconfigSec}}, nil
	case wrht.FabricFirstFit, wrht.FabricPriority:
		return []wrht.FabricPolicy{{Kind: name}}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// generateJobs builds a deterministic heterogeneous mix: catalog models of
// very different gradient sizes, exponential-ish arrivals, mixed priorities
// and stripe appetites.
func generateJobs(n int, seed int64, gapMs float64, budget int) []wrht.JobSpec {
	rng := rand.New(rand.NewSource(seed))
	models := []string{"AlexNet", "VGG16", "ResNet50", "GoogLeNet"}
	widths := []int{budget, budget / 2, budget / 4}
	arrival := 0.0
	var out []wrht.JobSpec
	for i := 0; i < n; i++ {
		model := models[rng.Intn(len(models))]
		arrival += rng.ExpFloat64() * gapMs * 1e-3
		width := widths[rng.Intn(len(widths))]
		if width < 1 {
			width = 1
		}
		out = append(out, wrht.JobSpec{
			Name:           fmt.Sprintf("j%02d-%s", i, model),
			Model:          model,
			ArrivalSec:     arrival,
			Priority:       rng.Intn(3),
			MaxWavelengths: width,
		})
	}
	return out
}

// generateChurnJobs builds a deterministic departure-heavy mix: bursts of
// short jobs with capped stripes fill the pool, and every few jobs a long
// uncapped straggler arrives while the fabric is still full. Grant-once
// policies start the stragglers on whatever sliver the first departure
// frees and strand the rest of the draining fabric; elastic re-allocation
// widens them into each freed stripe.
func generateChurnJobs(n int, seed int64, gapMs float64, budget int) []wrht.JobSpec {
	rng := rand.New(rand.NewSource(seed))
	widthCap := budget / 8
	if widthCap < 1 {
		widthCap = 1
	}
	arrival := 0.0
	var out []wrht.JobSpec
	for i := 0; i < n; i++ {
		arrival += rng.ExpFloat64() * gapMs * 1e-3 / 4
		if i%4 == 3 {
			out = append(out, wrht.JobSpec{
				Name:       fmt.Sprintf("j%02d-straggler-VGG16", i),
				Model:      "VGG16",
				ArrivalSec: arrival,
				Iterations: 1 + rng.Intn(2),
			})
			continue
		}
		out = append(out, wrht.JobSpec{
			Name:           fmt.Sprintf("j%02d-burst-AlexNet", i),
			Model:          "AlexNet",
			ArrivalSec:     arrival,
			MaxWavelengths: widthCap,
			Iterations:     1 + rng.Intn(3),
		})
	}
	return out
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad job count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func render(tb *stats.Table, format string) {
	switch format {
	case "markdown":
		fmt.Println(tb.Markdown())
	case "csv":
		fmt.Println(tb.CSV())
	default:
		fmt.Println(tb.String())
	}
}

// traceTable renders the event trace in the selected output format (a
// table keeps -detail -format csv machine-parseable).
func traceTable(res wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("event trace (%s)", res.Policy),
		"time", "event", "job", "λ")
	for _, ev := range res.Events {
		waves := ""
		if ev.Wavelengths > 0 {
			waves = fmt.Sprintf("%d", ev.Wavelengths)
		}
		tb.AddRow(stats.FormatSeconds(ev.TimeSec), ev.Kind, ev.Job, waves)
	}
	return tb
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fabricsim:", err)
		os.Exit(1)
	}
}
