// Command loadgen drives the pricing service (cmd/serve) with closed- or
// open-loop load and reports latency quantiles, throughput, and the status
// breakdown — the measurement harness behind the serving-layer overload
// contracts.
//
// Closed loop (-conc N): N workers issue requests back to back, so offered
// load tracks capacity — good for measuring warm latency. Open loop
// (-rate R): requests start on a fixed schedule regardless of completions,
// which is what actually saturates a bounded queue — good for proving the
// 429 shed path. A concurrency ladder (-ladder 1,2,4,8) reports QPS and p99
// per rung to locate saturation.
//
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -conc 8 -duration 5s
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -rate 500 -distinct 64 -short
//
// -out writes the run as a cmd/bench-schema report (name/ns_per_op/metrics)
// so serving numbers flow through the same tooling as the engine
// benchmarks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wrht/internal/serve"
)

// benchResult mirrors cmd/bench's Result schema so loadgen reports are
// consumable by the same tooling.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchReport struct {
	Bench     string        `json:"bench"`
	Short     bool          `json:"short"`
	Benchtime string        `json:"benchtime"`
	Results   []benchResult `json:"results"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	endpoint := flag.String("endpoint", "/v1/commtime", "endpoint to drive")
	body := flag.String("body", "", "request JSON (default: generated commtime payloads)")
	distinct := flag.Int("distinct", 8, "number of distinct generated payloads (cache/coalesce spread)")
	unique := flag.Bool("unique", false, "generate a unique payload per request (every request cold: saturates bounded queues)")
	conc := flag.Int("conc", 4, "closed-loop worker count")
	rate := flag.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	ladder := flag.String("ladder", "", "comma-separated closed-loop concurrency ladder (overrides -conc)")
	short := flag.Bool("short", false, "short mode: 1s runs, small payload spread")
	out := flag.String("out", "", "write a cmd/bench-schema JSON report to this path")
	flag.Parse()

	if *short {
		*duration = time.Second
		if *distinct > 4 {
			*distinct = 4
		}
	}
	var bodies [][]byte
	var newBody func(int) []byte
	if *unique {
		if *body != "" {
			fatalf("-unique and -body are mutually exclusive")
		}
		newBody = func(i int) []byte { return genPayload(*endpoint, i) }
	} else {
		bodies = payloads(*endpoint, *body, *distinct)
	}

	var rungs []int
	if *ladder != "" {
		for _, s := range strings.Split(*ladder, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatalf("bad -ladder entry %q", s)
			}
			rungs = append(rungs, n)
		}
	} else {
		rungs = []int{*conc}
	}

	report := benchReport{Bench: "loadgen", Short: *short, Benchtime: duration.String()}
	for _, c := range rungs {
		spec := serve.LoadSpec{
			BaseURL:     *addr,
			Endpoint:    *endpoint,
			Bodies:      bodies,
			NewBody:     newBody,
			Concurrency: c,
			RatePerSec:  *rate,
			Duration:    *duration,
		}
		rep, err := serve.RunLoad(context.Background(), spec)
		if err != nil {
			fatalf("%v", err)
		}
		printReport(rep, c)
		report.Results = append(report.Results, toBenchResult(rep, c))
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %d results to %s\n", len(report.Results), *out)
	}
}

// payloads builds the request body rotation. Distinct payloads matter for
// overload runs: identical bodies coalesce onto one flight, so they measure
// dedup, not admission.
func payloads(endpoint, body string, distinct int) [][]byte {
	if body != "" {
		return [][]byte{[]byte(body)}
	}
	if distinct < 1 {
		distinct = 1
	}
	out := make([][]byte, distinct)
	for i := range out {
		out[i] = genPayload(endpoint, i)
	}
	return out
}

// genPayload builds the i-th generated payload for the endpoint. Distinct i
// yield distinct simulation keys, so unique-mode requests are always cold.
func genPayload(endpoint string, i int) []byte {
	switch endpoint {
	case "/v1/commtime":
		return []byte(fmt.Sprintf(`{"Nodes": 64, "Algorithm": "wrht", "Bytes": %d}`,
			1<<20+i*4096))
	case "/v1/sweep":
		// A real grid per request: this is the expensive class, the one a
		// bounded queue visibly sheds under closed-loop concurrency.
		return []byte(fmt.Sprintf(
			`{"Spec": {"Nodes": [128], "MessageBytes": [%d], "Algorithms": ["wrht", "e-ring", "o-ring", "rd"]}}`,
			4<<20+i*4096))
	}
	fatalf("-body is required for endpoint %s", endpoint)
	return nil
}

func printReport(rep serve.LoadReport, conc int) {
	mode := rep.Mode
	if mode == "closed" {
		mode = fmt.Sprintf("closed c=%d", conc)
	}
	fmt.Printf("loadgen %s [%s]: %d requests in %.2fs (%.1f qps), %d ok, %d shed(429), %d errors\n",
		rep.Endpoint, mode, rep.Requests, rep.DurationSec, rep.QPS, rep.OK(), rep.Shed(), rep.Errors)
	fmt.Printf("  latency ms: mean %.3f p50 %.3f p90 %.3f p99 %.3f max %.3f\n",
		rep.MeanMillis, rep.P50Millis, rep.P90Millis, rep.P99Millis, rep.MaxMillis)
	for status, n := range rep.ByStatus {
		if status != 200 && status != 429 {
			fmt.Printf("  status %d: %d\n", status, n)
		}
	}
}

func toBenchResult(rep serve.LoadReport, conc int) benchResult {
	name := fmt.Sprintf("Loadgen%s/%s/c%d", strings.ReplaceAll(rep.Endpoint, "/", "_"), rep.Mode, conc)
	return benchResult{
		Name:       name,
		Iterations: rep.Requests,
		NsPerOp:    rep.MeanMillis * 1e6,
		Metrics: map[string]float64{
			"qps":    rep.QPS,
			"p50-ms": rep.P50Millis,
			"p90-ms": rep.P90Millis,
			"p99-ms": rep.P99Millis,
			"ok":     float64(rep.OK()),
			"shed":   float64(rep.Shed()),
			"errors": float64(rep.Errors),
		},
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
