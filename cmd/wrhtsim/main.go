// Command wrhtsim prices a single all-reduce on the simulated cluster and
// prints a comparison table.
//
// Usage:
//
//	wrhtsim -nodes 1024 -model VGG16
//	wrhtsim -nodes 512 -bytes 104857600 -algs wrht,o-ring,e-ring
//	wrhtsim -nodes 1024 -model AlexNet -wavelengths 32 -m 5 -plan
//	wrhtsim -nodes 256 -model VGG16 -trace trace.json -metrics metrics.md
//
// -trace writes the pricing flight-recorder timeline (per-step spans per
// schedule) as Chrome trace-event JSON for ui.perfetto.dev; -metrics writes
// the observability snapshot (cache layers, certificate and pricer
// counters) as markdown, or CSV with a .csv suffix.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wrht"
	"wrht/internal/stats"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 1024, "number of workers")
		modelName   = flag.String("model", "VGG16", "catalog model (AlexNet, VGG16, ResNet50, GoogLeNet)")
		bytes       = flag.Int64("bytes", 0, "explicit buffer size in bytes (overrides -model)")
		algsFlag    = flag.String("algs", "", "comma-separated algorithms (default: the paper's four)")
		wavelengths = flag.Int("wavelengths", 64, "WDM wavelengths per waveguide")
		gbps        = flag.Float64("gbps", 25, "optical per-wavelength rate (Gb/s)")
		elecGbps    = flag.Float64("elec-gbps", 100, "electrical link rate (Gb/s)")
		groupSize   = flag.Int("m", 0, "Wrht group size (0 = optimizer)")
		greedy      = flag.Bool("greedy", false, "use Wrht's greedy all-to-all trigger")
		plan        = flag.Bool("plan", false, "also print the Wrht plan")
		markdown    = flag.Bool("markdown", false, "emit markdown instead of aligned text")
		configPath  = flag.String("config", "", "load cluster config from JSON (see wrht.SaveConfig); flags still override -m/-greedy")
		energy      = flag.Bool("energy", false, "also print per-algorithm energy estimates")
		tracePath   = flag.String("trace", "", "write Perfetto trace-event JSON to this file")
		metrics     = flag.String("metrics", "", "write a metrics snapshot to this file (.csv for CSV, else markdown)")
	)
	flag.Parse()

	var cfg wrht.Config
	if *configPath != "" {
		var err error
		cfg, err = wrht.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrhtsim:", err)
			os.Exit(1)
		}
	} else {
		cfg = wrht.DefaultConfig(*nodes)
		cfg.Optical.Wavelengths = *wavelengths
		cfg.Optical.GbpsPerWavelength = *gbps
		cfg.Electrical.LinkGbps = *elecGbps
	}
	cfg.WrhtGroupSize = *groupSize
	cfg.WrhtGreedyA2A = *greedy

	size := *bytes
	label := stats.FormatBytes(size)
	if size == 0 {
		m := wrht.MustModel(*modelName)
		size = m.Bytes
		label = fmt.Sprintf("%s (%s FP32 gradients)", m.Name, stats.FormatBytes(size))
	}

	algs := wrht.PaperAlgorithms()
	if *algsFlag != "" {
		algs = nil
		for _, a := range strings.Split(*algsFlag, ",") {
			algs = append(algs, wrht.Algorithm(strings.TrimSpace(a)))
		}
	}

	ss := wrht.NewSweepSession()
	var ob *wrht.Observer
	if *tracePath != "" || *metrics != "" {
		ob = ss.Observe()
	}
	results, err := ss.Compare(cfg, algs, size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrhtsim:", err)
		os.Exit(1)
	}

	best := results[0].Seconds
	for _, r := range results {
		if r.Seconds < best {
			best = r.Seconds
		}
	}
	tb := stats.NewTable(
		fmt.Sprintf("all-reduce of %s on %d nodes (w=%d × %g Gb/s optical, %g Gb/s electrical)",
			label, cfg.Nodes, cfg.Optical.Wavelengths, cfg.Optical.GbpsPerWavelength,
			cfg.Electrical.LinkGbps),
		"algorithm", "substrate", "time", "steps", "λ", "vs best")
	for _, r := range results {
		lam := "-"
		if r.MaxWavelengths > 0 {
			lam = fmt.Sprintf("%d", r.MaxWavelengths)
		}
		tb.AddRow(string(r.Algorithm), r.Substrate,
			stats.FormatSeconds(r.Seconds),
			fmt.Sprintf("%d", r.Steps), lam,
			fmt.Sprintf("%.2fx", r.Seconds/best))
	}
	if *markdown {
		fmt.Print(tb.Markdown())
	} else {
		fmt.Print(tb.String())
	}

	if *energy {
		et := stats.NewTable("\nenergy per all-reduce", "algorithm", "dynamic", "tuning", "static", "total")
		for _, a := range algs {
			rep, err := wrht.EnergyEstimate(cfg, a, size)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wrhtsim:", err)
				os.Exit(1)
			}
			et.AddRow(string(a),
				fmt.Sprintf("%.3g J", rep.DynamicJ),
				fmt.Sprintf("%.3g J", rep.TuningJ),
				fmt.Sprintf("%.3g J", rep.StaticJ),
				fmt.Sprintf("%.3g J", rep.TotalJ))
		}
		fmt.Print(et.String())
	}

	if *tracePath != "" {
		if err := ob.WriteTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "wrhtsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (open in ui.perfetto.dev)\n", *tracePath)
	}
	if *metrics != "" {
		snap := ss.Snapshot()
		body := snap.Markdown()
		if strings.HasSuffix(*metrics, ".csv") {
			body = snap.CSV()
		}
		if err := os.WriteFile(*metrics, []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wrhtsim:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: %s\n", *metrics)
	}

	if *plan {
		p, err := wrht.Plan(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrhtsim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nWrht plan: %s\n", p.Description)
		fmt.Printf("  steps %d (paper bound %d), tree levels %d, all-to-all reps %d\n",
			p.Steps, p.StepsUpperBnd, p.TreeLevels, p.A2AReps)
		fmt.Printf("  stripes: tree x%d, all-to-all x%d; per-step wavelength demand %v\n",
			p.TreeStripe, p.A2AStripe, p.StepDemands)
	}
}
