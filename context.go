package wrht

import "context"

// Context-aware pricing.
//
// Every heavy entry point on SweepSession has a Context variant so a
// serving layer (internal/serve, cmd/serve) can bound requests in time:
// the context's deadline or cancellation propagates into the pricing
// engines and is checked at iteration boundaries — between sweep grid
// points and, inside fabric and fleet co-simulations, every ~1024 executed
// discrete events — so a killed request stops burning its worker within a
// bounded number of steps instead of running to completion. A canceled
// call returns the context's error (context.Canceled or
// context.DeadlineExceeded); partial results are never returned.
//
// The non-Context methods are unchanged and remain the zero-overhead
// path: a nil context disables every check.

// ctxCancel lowers a context to the engines' cancellation-hook shape; a nil
// context (or context.Background()) costs nothing downstream.
func ctxCancel(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// CommunicationTimeContext is CommunicationTime under a cancellation
// context. Single-point pricing is the service's cheap, bounded class, so
// the context is checked at the call boundary (and between the plan,
// schedule, and simulation phases via the shared session caches) rather
// than inside the per-class pricing loops.
func (ss *SweepSession) CommunicationTimeContext(ctx context.Context, cfg Config, alg Algorithm, bytes int64) (Result, error) {
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}
	return ss.CommunicationTime(cfg, alg, bytes)
}

// SimulateFabricContext is SimulateFabric under a cancellation context,
// checked every ~1024 executed events of the co-simulation.
func (ss *SweepSession) SimulateFabricContext(ctx context.Context, cfg Config, jobs []JobSpec, policy FabricPolicy, plan ...FaultPlan) (FabricResult, error) {
	if err := ctxErr(ctx); err != nil {
		return FabricResult{}, err
	}
	fp, err := onePlan(plan)
	if err != nil {
		return FabricResult{}, err
	}
	return simulateFabric(cfg, jobs, policy, ss.sess.fabric, fp, ctxCancel(ctx))
}

// SimulateFleetContext is SimulateFleet under a cancellation context,
// checked every ~1024 executed events of the fleet's shared timeline.
func (ss *SweepSession) SimulateFleetContext(ctx context.Context, cfg Config, fabrics []FleetFabricSpec, shapes []FleetShape, jobs []FleetJob, opt FleetOptions) (FleetResult, error) {
	if err := ctxErr(ctx); err != nil {
		return FleetResult{}, err
	}
	return simulateFleet(cfg, fabrics, shapes, jobs, opt, ss.sess.fabric, ctxCancel(ctx))
}

// RunSweepContext is RunSweep under a cancellation context: once the
// context is done, unevaluated grid points fill their cells' Err slots with
// the context's error (the grid shape is preserved) and in-flight fabric
// points abandon their co-simulations at the next event boundary.
func (ss *SweepSession) RunSweepContext(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	return runSweep(ctx, spec, ss.sess)
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
