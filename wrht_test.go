package wrht

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(128).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultConfig(1).Validate(); err == nil {
		t.Fatal("1-node config accepted")
	}
}

func TestModelsCatalog(t *testing.T) {
	ms := Models()
	if len(ms) != 4 {
		t.Fatalf("%d models", len(ms))
	}
	if ms[0].Name != "AlexNet" || ms[0].Params != 62_378_344 || ms[0].Bytes != 4*62_378_344 {
		t.Fatalf("AlexNet spec: %+v", ms[0])
	}
	if MustModel("VGG16").Params != 138_357_544 {
		t.Fatal("MustModel VGG16")
	}
}

func TestMustModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustModel of unknown name did not panic")
		}
	}()
	MustModel("nope")
}

func TestCommunicationTimeAllAlgorithms(t *testing.T) {
	cfg := DefaultConfig(64)
	for _, alg := range Algorithms() {
		res, err := CommunicationTime(cfg, alg, 32<<20)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Seconds <= 0 {
			t.Fatalf("%s: non-positive time %v", alg, res.Seconds)
		}
		if res.Steps <= 0 {
			t.Fatalf("%s: steps %d", alg, res.Steps)
		}
		if res.PredictedSeconds > 0 {
			rel := math.Abs(res.Seconds-res.PredictedSeconds) / res.PredictedSeconds
			if rel > 0.02 {
				t.Errorf("%s: simulation %.6g vs prediction %.6g (%.2f%%)",
					alg, res.Seconds, res.PredictedSeconds, 100*rel)
			}
		}
	}
}

func TestCompareOrderingFigure2(t *testing.T) {
	// The paper's Figure-2 ordering at the flagship point (VGG16, N=1024):
	// WRHT < E-Ring < O-Ring < RD with default parameters.
	cfg := DefaultConfig(1024)
	res, err := Compare(cfg, PaperAlgorithms(), MustModel("VGG16").Bytes)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[Algorithm]float64{}
	for _, r := range res {
		byAlg[r.Algorithm] = r.Seconds
	}
	if !(byAlg[AlgWrht] < byAlg[AlgERing]) {
		t.Errorf("WRHT (%v) should beat E-Ring (%v)", byAlg[AlgWrht], byAlg[AlgERing])
	}
	if !(byAlg[AlgERing] < byAlg[AlgORing]) {
		t.Errorf("E-Ring (%v) should beat O-Ring (%v)", byAlg[AlgERing], byAlg[AlgORing])
	}
	if !(byAlg[AlgWrht] < byAlg[AlgRD]) {
		t.Errorf("WRHT (%v) should beat RD (%v)", byAlg[AlgWrht], byAlg[AlgRD])
	}
}

func TestVerifyAlgorithmAll(t *testing.T) {
	cfg := DefaultConfig(24)
	for _, alg := range Algorithms() {
		if err := VerifyAlgorithm(cfg, alg, 33); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestPlanSummary(t *testing.T) {
	cfg := DefaultConfig(1024)
	p, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps <= 0 || p.GroupSize < 2 || p.Description == "" {
		t.Fatalf("bad plan summary: %+v", p)
	}
	if p.Steps > p.StepsUpperBnd {
		t.Fatalf("steps %d exceed bound %d", p.Steps, p.StepsUpperBnd)
	}
	for _, d := range p.StepDemands {
		if d > cfg.Optical.Wavelengths {
			t.Fatalf("step demand %d exceeds budget", d)
		}
	}
	// Fixed group size is honored.
	cfg.WrhtGroupSize = 5
	p5, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p5.GroupSize != 5 {
		t.Fatalf("fixed group size ignored: %d", p5.GroupSize)
	}
}

func TestTrainingIteration(t *testing.T) {
	cfg := DefaultConfig(1024)
	e, err := TrainingIteration(cfg, AlgERing, "VGG16", 25<<20)
	if err != nil {
		t.Fatal(err)
	}
	w, err := TrainingIteration(cfg, AlgWrht, "VGG16", 25<<20)
	if err != nil {
		t.Fatal(err)
	}
	if w.IterationSec >= e.IterationSec {
		t.Fatalf("Wrht iteration %.4g not faster than E-Ring %.4g", w.IterationSec, e.IterationSec)
	}
	if e.CommShare < 0.5 {
		t.Fatalf("E-Ring comm share %.2f below the paper's motivating band", e.CommShare)
	}
	if w.ScalingEfficiency <= e.ScalingEfficiency {
		t.Fatalf("Wrht efficiency %.2f not above E-Ring %.2f", w.ScalingEfficiency, e.ScalingEfficiency)
	}
	if _, err := TrainingIteration(cfg, AlgWrht, "nope", 25<<20); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCommunicationTimeValidation(t *testing.T) {
	cfg := DefaultConfig(16)
	if _, err := CommunicationTime(cfg, AlgWrht, 0); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := CommunicationTime(cfg, Algorithm("bogus"), 1024); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	bad := cfg
	bad.Nodes = 0
	if _, err := CommunicationTime(bad, AlgWrht, 1024); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestWrhtStripingAblationViaConfig(t *testing.T) {
	cfg := DefaultConfig(256)
	bytes := MustModel("ResNet50").Bytes
	striped, err := CommunicationTime(cfg, AlgWrht, bytes)
	if err != nil {
		t.Fatal(err)
	}
	unstriped, err := CommunicationTime(cfg, AlgWrhtUnstriped, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if striped.Seconds >= unstriped.Seconds {
		t.Fatalf("striping should help: %v vs %v", striped.Seconds, unstriped.Seconds)
	}
}

func TestTrainingIterationAllAlgorithms(t *testing.T) {
	// Regression: AlgBinomial and AlgWrhtPipelined used to fail because
	// commTimer had no arm for them even though CommunicationTime supports
	// both. Every public algorithm must now produce a coherent iteration.
	cfg := DefaultConfig(64)
	for _, alg := range Algorithms() {
		rep, err := TrainingIteration(cfg, alg, "ResNet50", 25<<20)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.IterationSec <= 0 || rep.CommSec <= 0 || rep.Buckets <= 0 {
			t.Fatalf("%s: degenerate report %+v", alg, rep)
		}
		if rep.IterationSec < rep.ComputeSec {
			t.Fatalf("%s: iteration %.6g shorter than compute %.6g",
				alg, rep.IterationSec, rep.ComputeSec)
		}
		if rep.ExposedCommSec < 0 || rep.CommShare <= 0 || rep.CommShare >= 1 {
			t.Fatalf("%s: bad overlap accounting %+v", alg, rep)
		}
	}
}

func TestTrainingIterationRejectsNegativePipelineChunks(t *testing.T) {
	// Regression: a negative chunk count used to be priced silently with the
	// unpipelined model while CommunicationTime rejected it.
	cfg := DefaultConfig(64)
	cfg.PipelineChunks = -1
	if _, err := TrainingIteration(cfg, AlgWrhtPipelined, "ResNet50", 25<<20); err == nil {
		t.Fatal("negative PipelineChunks accepted")
	}
	if _, err := CommunicationTime(cfg, AlgWrhtPipelined, 1<<20); err == nil {
		t.Fatal("CommunicationTime accepted negative PipelineChunks")
	}
}
