// energy_budget estimates the energy of one gradient all-reduce per
// algorithm and model — the paper's "low power cost" motivation for optical
// interconnects, quantified. Optical transfers convert at the endpoints only
// (pass-through nodes stay in the optical domain), so the per-bit dynamic
// energy is an order of magnitude below the electrical network's, and Wrht's
// short runtime shrinks the static laser term that dominates O-Ring.
//
//	go run ./examples/energy_budget
package main

import (
	"fmt"
	"log"

	"wrht"
	"wrht/internal/stats"
)

func main() {
	cfg := wrht.DefaultConfig(1024)
	algs := []wrht.Algorithm{wrht.AlgERing, wrht.AlgRD, wrht.AlgORing, wrht.AlgWrht}

	for _, m := range wrht.Models() {
		tb := stats.NewTable(
			fmt.Sprintf("energy per %s all-reduce (%s) on %d workers",
				m.Name, stats.FormatBytes(m.Bytes), cfg.Nodes),
			"algorithm", "time", "dynamic", "tuning", "static", "total", "vs wrht")
		var wrhtJ float64
		reports := make([]wrht.EnergyReport, 0, len(algs))
		for _, alg := range algs {
			rep, err := wrht.EnergyEstimate(cfg, alg, m.Bytes)
			if err != nil {
				log.Fatal(err)
			}
			reports = append(reports, rep)
			if alg == wrht.AlgWrht {
				wrhtJ = rep.TotalJ
			}
		}
		for _, rep := range reports {
			tb.AddRow(string(rep.Algorithm),
				stats.FormatSeconds(rep.Seconds),
				fmt.Sprintf("%.3g J", rep.DynamicJ),
				fmt.Sprintf("%.3g J", rep.TuningJ),
				fmt.Sprintf("%.3g J", rep.StaticJ),
				fmt.Sprintf("%.3g J", rep.TotalJ),
				fmt.Sprintf("%.1fx", rep.TotalJ/wrhtJ))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
	fmt.Println("dynamic = per-bit conversion/switch energy; static = laser/idle power x duration.")
}
