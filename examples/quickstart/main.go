// Quickstart: price one VGG16 gradient all-reduce on a 1024-node optical
// ring with Wrht versus the paper's three baselines, then verify that the
// Wrht schedule really computes an all-reduce.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wrht"
)

func main() {
	// A 1024-worker cluster with TeraRack-like optics (64 wavelengths at
	// 25 Gb/s each) and a 100 Gb/s electrical network for the baselines.
	cfg := wrht.DefaultConfig(1024)
	vgg := wrht.MustModel("VGG16")
	fmt.Printf("all-reducing %s: %.1f MB of FP32 gradients across %d workers\n\n",
		vgg.Name, float64(vgg.Bytes)/1e6, cfg.Nodes)

	results, err := wrht.Compare(cfg, wrht.PaperAlgorithms(), vgg.Bytes)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %-8s %-22s %8.1f ms in %4d steps\n",
			r.Algorithm, r.Substrate, r.Seconds*1e3, r.Steps)
	}

	wrhtSec := results[len(results)-1].Seconds
	fmt.Printf("\nWrht reduction vs E-Ring: %.1f%%, vs O-Ring: %.1f%%\n",
		100*(1-wrhtSec/results[0].Seconds),
		100*(1-wrhtSec/results[2].Seconds))

	// The plan the optimizer chose.
	plan, err := wrht.Plan(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen plan: %s\n", plan.Description)

	// Timing claims are only as good as the schedule's correctness: execute
	// it on real buffers and check every node ends with the exact sum.
	if err := wrht.VerifyAlgorithm(wrht.DefaultConfig(64), wrht.AlgWrht, 128); err != nil {
		log.Fatal(err)
	}
	fmt.Println("correctness: Wrht schedule verified as an exact all-reduce on 64 nodes")
}
