// ddp_training simulates one data-parallel SGD iteration per model and
// interconnect: backprop produces gradient buckets (25 MB fusion cap, as DDP
// implementations default to) whose all-reduces overlap the remaining
// backward compute. It reproduces the paper's motivation — communication
// consumes 50–90% of iteration time on electrical networks at scale — and
// shows what Wrht does to that share.
//
//	go run ./examples/ddp_training
package main

import (
	"fmt"
	"log"

	"wrht"
	"wrht/internal/stats"
)

func main() {
	const bucketCap = 25 << 20
	cfg := wrht.DefaultConfig(1024)
	algs := []wrht.Algorithm{wrht.AlgERing, wrht.AlgRD, wrht.AlgORing, wrht.AlgWrht}

	for _, m := range wrht.Models() {
		tb := stats.NewTable(
			fmt.Sprintf("%s on %d workers, 25 MB gradient buckets", m.Name, cfg.Nodes),
			"algorithm", "iteration", "compute", "comm", "exposed", "comm share", "scaling eff")
		for _, alg := range algs {
			rep, err := wrht.TrainingIteration(cfg, alg, m.Name, bucketCap)
			if err != nil {
				log.Fatal(err)
			}
			tb.AddRow(string(alg),
				stats.FormatSeconds(rep.IterationSec),
				stats.FormatSeconds(rep.ComputeSec),
				stats.FormatSeconds(rep.CommSec),
				stats.FormatSeconds(rep.ExposedCommSec),
				fmt.Sprintf("%.0f%%", 100*rep.CommShare),
				fmt.Sprintf("%.0f%%", 100*rep.ScalingEfficiency))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
	fmt.Println("comm share = communication / (compute + communication) if nothing overlapped —")
	fmt.Println("the paper's intro cites 50–90% for electrical interconnects at scale.")
}
