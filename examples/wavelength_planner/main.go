// wavelength_planner explores how Wrht's plan shape responds to the
// hardware's wavelength budget: the optimizer's group size, step count,
// stripe widths, and the resulting communication time for one model, across
// w = 1..128. This is the tool a deployment would use to size its comb
// laser.
//
//	go run ./examples/wavelength_planner
//	go run ./examples/wavelength_planner -nodes 512 -model ResNet50
package main

import (
	"flag"
	"fmt"
	"log"

	"wrht"
	"wrht/internal/stats"
)

func main() {
	nodes := flag.Int("nodes", 1024, "ring size")
	modelName := flag.String("model", "VGG16", "catalog model")
	flag.Parse()

	m := wrht.MustModel(*modelName)
	tb := stats.NewTable(
		fmt.Sprintf("Wrht plan vs wavelength budget: %s (%s) on %d nodes",
			m.Name, stats.FormatBytes(m.Bytes), *nodes),
		"w", "m*", "steps", "tree stripe", "a2a reps", "time", "speedup vs w=1")
	var base float64
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := wrht.DefaultConfig(*nodes)
		cfg.Optical.Wavelengths = w
		plan, err := wrht.Plan(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, m.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds
		}
		tb.AddRow(fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", plan.GroupSize),
			fmt.Sprintf("%d", plan.Steps),
			fmt.Sprintf("x%d", plan.TreeStripe),
			fmt.Sprintf("%d", plan.A2AReps),
			stats.FormatSeconds(res.Seconds),
			fmt.Sprintf("%.1fx", base/res.Seconds))
	}
	fmt.Print(tb.String())
	fmt.Println("\nm* is the optimizer's group size; steps obey 2⌈log_m N⌉ or one less.")
}
