// schedule_inspect renders the Wrht schedule structure — the paper's
// Figure 1 — for a small ring: every reduce level's groups and
// representative collections, the all-to-all among the final
// representatives, and the mirrored broadcast stage, with per-step
// wavelength counts from real First-Fit assignment.
//
//	go run ./examples/schedule_inspect
//	go run ./examples/schedule_inspect -nodes 27 -m 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"wrht"
	"wrht/internal/stats"
)

func main() {
	nodes := flag.Int("nodes", 16, "ring size")
	m := flag.Int("m", 3, "Wrht group size (0 = optimizer)")
	flag.Parse()

	cfg := wrht.DefaultConfig(*nodes)
	cfg.WrhtGroupSize = *m

	plan, err := wrht.Plan(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wrht on %d nodes, %d wavelengths: %s\n", *nodes, cfg.Optical.Wavelengths, plan.Description)
	fmt.Printf("steps: %d (paper bound 2⌈log_m N⌉ = %d)\n\n", plan.Steps, plan.StepsUpperBnd)

	steps, err := wrht.ScheduleOutline(cfg, wrht.AlgWrht, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range steps {
		fmt.Printf("step %2d  %-26s %3d transfers, %2d λ, %s\n",
			st.Index, st.Label, st.Transfers, st.Wavelengths, stats.FormatSeconds(st.Seconds))
		arcs := st.Arcs
		const perLine = 8
		for off := 0; off < len(arcs); off += perLine {
			end := off + perLine
			if end > len(arcs) {
				end = len(arcs)
			}
			fmt.Printf("         %s\n", strings.Join(arcs[off:end], "  "))
		}
	}

	fmt.Println("\nwavelength reuse: groups occupy disjoint ring arcs, so every group's")
	fmt.Println("collection shares the same ⌊m/2⌋ wavelengths (the λ column stays flat")
	fmt.Println("across levels even as group spans grow).")

	// Observability snapshot: how the classed-pricing lowering classified
	// these steps, and what an observed pricing session records about them.
	cstats, err := wrht.InspectScheduleClasses(cfg, wrht.AlgWrht, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassed-pricing certificate stats (%s):\n", cstats.Algorithm)
	fmt.Printf("  steps: %d total — %d certified symmetric, %d materialized (%d demoted)\n",
		cstats.Steps, cstats.CertifiedSteps, cstats.MaterializedSteps, cstats.DemotedSteps)
	fmt.Printf("  certified steps price %d transfers through %d equivalence classes\n",
		cstats.Transfers, cstats.Classes)

	ss := wrht.NewSweepSession()
	ss.Observe()
	if _, err := ss.CommunicationTime(cfg, wrht.AlgWrht, 4<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nobserved pricing session snapshot:")
	fmt.Println(ss.Snapshot().Markdown())
}
