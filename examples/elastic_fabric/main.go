// Elastic fabric: dynamic wavelength re-allocation for arriving and
// departing tenants. A burst of eight short AlexNet jobs (capped at 8
// wavelengths each) fills a 64-wavelength ring; a long VGG16 straggler
// arrives while the pool is full. Under first-fit the straggler starts on
// the 8-wavelength sliver the first departure frees and keeps it while the
// rest of the fabric drains dark around it. The elastic policy re-solves
// the stripe assignment at every departure, widening the straggler into
// each freed stripe — at the cost of an optical switch settling stall per
// reconfiguration, which this example sweeps.
//
//	go run ./examples/elastic_fabric
package main

import (
	"fmt"
	"log"

	"wrht"
	"wrht/internal/report"
)

func main() {
	cfg := wrht.DefaultConfig(64)
	mix := report.ChurnMix()

	// One runtime cache across every policy and settling delay: each
	// tenant's runtime(width) curve is priced once via the exact
	// single-ring simulation path and replayed everywhere.
	sess := wrht.NewSweepSession()

	results, err := sess.CompareFabricPolicies(cfg, mix.Jobs, []wrht.FabricPolicy{
		{Kind: wrht.FabricFirstFit},
		{Kind: wrht.FabricElastic, ReconfigDelaySec: 2e-6},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.FabricPolicyTable(
		"departure-heavy mix: grant-once vs elastic (64 nodes, 64 λ)", results))

	// The straggler's life under each policy: first-fit strands it at the
	// width it started with; elastic widens it step by step as the burst
	// jobs depart (every "reconfig" event below is one widening).
	for _, res := range results {
		var straggler wrht.FabricJobResult
		for _, j := range res.Jobs {
			if j.Name == "straggler-vgg" {
				straggler = j
			}
		}
		fmt.Printf("%-12s straggler: started %.2f ms after arrival, final width %d λ, %d reconfigs, done at %.1f ms (slowdown %.2fx)\n",
			res.Policy.String(), 1e3*straggler.QueueSec, straggler.Width,
			straggler.Reconfigs, 1e3*straggler.DoneSec, straggler.Slowdown)
		if res.Policy.Kind != wrht.FabricElastic {
			continue
		}
		fmt.Println("  elastic widening trace:")
		for _, ev := range res.Events {
			if ev.Job == "straggler-vgg" && (ev.Kind == "start" || ev.Kind == "reconfig") {
				fmt.Printf("    t=%8.3f ms  %-8s  %2d λ\n", 1e3*ev.TimeSec, ev.Kind, ev.Wavelengths)
			}
		}
	}

	// How expensive may reconfiguration be before elasticity stops paying?
	// The widen guard skips any change that would not strictly improve the
	// job's projected completion, so a pathological settling time degrades
	// elastic gracefully toward first-fit instead of below it.
	fmt.Println("\nsettling-delay sensitivity (elastic):")
	fmt.Printf("  %-12s %-10s %-14s %s\n", "delay", "makespan", "mean slowdown", "reconfigs")
	for _, delay := range []float64{0, 2e-6, 200e-6, 2e-3, 20e-3} {
		res, err := sess.SimulateFabric(cfg, mix.Jobs,
			wrht.FabricPolicy{Kind: wrht.FabricElastic, ReconfigDelaySec: delay})
		if err != nil {
			log.Fatal(err)
		}
		reconfigs := 0
		for _, j := range res.Jobs {
			reconfigs += j.Reconfigs
		}
		fmt.Printf("  %-12s %-10s %-14s %d\n",
			fmt.Sprintf("%gus", delay*1e6),
			fmt.Sprintf("%.1fms", 1e3*res.MakespanSec),
			fmt.Sprintf("%.2fx", res.MeanSlowdown), reconfigs)
	}
}
