// Multi-tenant fabric: eight heterogeneous training jobs arrive over ~10 ms
// and contend for one 64-wavelength optical ring. The same mix runs under
// all partitioning policies — static shares, first-fit pooling, priority
// preemption, and elastic re-allocation — to show what each one trades:
// static isolates tenants but strands idle shares, first-fit fills the pool
// but lets wide jobs monopolize it, priority protects urgent jobs by
// preempting background ones, and elastic re-solves the assignment on every
// arrival/departure (see examples/elastic_fabric for the deep dive).
//
//	go run ./examples/multi_tenant
package main

import (
	"fmt"
	"log"

	"wrht"
	"wrht/internal/report"
)

func main() {
	cfg := wrht.DefaultConfig(64)

	// Two latency-sensitive jobs (priority 2), a mid tier, and background
	// pre-training: mixed models, arrival times, and stripe appetites.
	jobs := []wrht.JobSpec{
		{Name: "serve-alexnet", Model: "AlexNet", Priority: 2, MaxWavelengths: 16},
		{Name: "pretrain-vgg", Model: "VGG16", ArrivalSec: 1e-3, Iterations: 2},
		{Name: "tune-resnet", Model: "ResNet50", ArrivalSec: 2e-3, Priority: 1, MaxWavelengths: 32},
		{Name: "pretrain-google", Model: "GoogLeNet", ArrivalSec: 3e-3},
		{Name: "serve-resnet", Model: "ResNet50", ArrivalSec: 5e-3, Priority: 2, MaxWavelengths: 16},
		{Name: "ablate-alexnet", Model: "AlexNet", ArrivalSec: 6e-3, MaxWavelengths: 8},
		{Name: "tune-vgg", Model: "VGG16", ArrivalSec: 8e-3, Priority: 1, MaxWavelengths: 32},
		{Name: "probe-1MB", Bytes: 1 << 20, ArrivalSec: 9e-3, MaxWavelengths: 4},
	}

	results, err := wrht.CompareFabricPolicies(cfg, jobs, wrht.FabricPolicies())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.FabricPolicyTable(
		"8 tenants sharing a 64-wavelength ring (64 nodes)", results))

	// The priority policy's per-job view: the serving jobs jump the queue;
	// background pre-training absorbs the slowdown.
	for _, res := range results {
		if res.Policy.Kind != wrht.FabricPriority {
			continue
		}
		fmt.Println(report.FabricJobsTable(res))
		preempted := 0
		for _, j := range res.Jobs {
			preempted += j.Preemptions
		}
		fmt.Printf("priority policy: %d preemption(s); fairness %.3f, utilization %.1f%%\n",
			preempted, res.Fairness, 100*res.Utilization)
	}

	// A tenant alone on the fabric reproduces the dedicated-ring numbers —
	// the single-job path is exactly wrht.CommunicationTime.
	solo, err := wrht.SimulateFabric(cfg,
		[]wrht.JobSpec{{Name: "solo", Model: "VGG16"}},
		wrht.FabricPolicy{Kind: wrht.FabricFirstFit})
	if err != nil {
		log.Fatal(err)
	}
	ded, err := wrht.CommunicationTime(cfg, wrht.AlgWrht, wrht.MustModel("VGG16").Bytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolo tenant: %.4f ms on the fabric vs %.4f ms dedicated (identical: %v)\n",
		solo.Jobs[0].DoneSec*1e3, ded.Seconds*1e3, solo.Jobs[0].DoneSec == ded.Seconds)
}
