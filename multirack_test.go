package wrht

import "testing"

func TestMultiRackTime(t *testing.T) {
	cfg := DefaultConfig(1) // Nodes ignored by MultiRackTime
	res, err := MultiRackTime(cfg, 8, 128, MustModel("ResNet50").Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntraReduceSec <= 0 || res.InterSec <= 0 || res.IntraBroadcastSec <= 0 {
		t.Fatalf("non-positive phases: %+v", res)
	}
	sum := res.IntraReduceSec + res.InterSec + res.IntraBroadcastSec
	if res.TotalSec != sum {
		t.Fatalf("total %v != phase sum %v", res.TotalSec, sum)
	}
	if res.TotalSec >= res.FlatERingSec {
		t.Fatalf("hierarchy %v not under flat E-Ring %v", res.TotalSec, res.FlatERingSec)
	}
}

func TestMultiRackValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	if _, err := MultiRackTime(cfg, 1, 8, 1024); err == nil {
		t.Fatal("1 rack accepted")
	}
	if _, err := MultiRackTime(cfg, 4, 8, 0); err == nil {
		t.Fatal("zero bytes accepted")
	}
}

func TestMultiRackErrorPaths(t *testing.T) {
	badOptical := DefaultConfig(1)
	badOptical.Optical.Wavelengths = 0
	badElectrical := DefaultConfig(1)
	badElectrical.Electrical.LinkGbps = -1
	cases := []struct {
		name         string
		cfg          Config
		racks, nodes int
		bytes        int64
	}{
		{"negative bytes", DefaultConfig(1), 4, 8, -1},
		{"zero racks", DefaultConfig(1), 0, 8, 1024},
		{"negative racks", DefaultConfig(1), -2, 8, 1024},
		{"zero nodes per rack", DefaultConfig(1), 4, 0, 1024},
		{"one node per rack", DefaultConfig(1), 4, 1, 1024},
		{"negative nodes per rack", DefaultConfig(1), 4, -3, 1024},
		{"invalid optical", badOptical, 4, 8, 1024},
		{"invalid electrical", badElectrical, 4, 8, 1024},
	}
	for _, tc := range cases {
		if _, err := MultiRackTime(tc.cfg, tc.racks, tc.nodes, tc.bytes); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestVerifyMultiRackErrorPaths(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := VerifyMultiRack(cfg, 0, 8, 16); err == nil {
		t.Error("zero racks accepted")
	}
	if err := VerifyMultiRack(cfg, 4, 0, 16); err == nil {
		t.Error("zero nodes per rack accepted")
	}
	bad := cfg
	bad.Optical.Wavelengths = 0
	if err := VerifyMultiRack(bad, 4, 8, 16); err == nil {
		t.Error("invalid optical config accepted")
	}
}

func TestVerifyMultiRack(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := VerifyMultiRack(cfg, 3, 12, 29); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMultiRack(cfg, 1, 12, 29); err == nil {
		t.Fatal("1 rack accepted")
	}
}

func TestMultiRackBytesPerElemValidation(t *testing.T) {
	// Regression: a negative element width used to flow straight into the
	// element count; it must be rejected exactly like CommunicationTime
	// rejects it, while 0 still means the FP32 default.
	bad := DefaultConfig(1)
	bad.BytesPerElem = -4
	if _, err := MultiRackTime(bad, 2, 8, 1<<20); err == nil {
		t.Fatal("negative BytesPerElem accepted")
	}
	zero := DefaultConfig(1)
	zero.BytesPerElem = 0
	four := DefaultConfig(1)
	four.BytesPerElem = 4
	rz, err := MultiRackTime(zero, 2, 8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := MultiRackTime(four, 2, 8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rz != rf {
		t.Fatalf("zero width %+v != default width %+v", rz, rf)
	}
}
