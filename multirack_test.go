package wrht

import "testing"

func TestMultiRackTime(t *testing.T) {
	cfg := DefaultConfig(1) // Nodes ignored by MultiRackTime
	res, err := MultiRackTime(cfg, 8, 128, MustModel("ResNet50").Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntraReduceSec <= 0 || res.InterSec <= 0 || res.IntraBroadcastSec <= 0 {
		t.Fatalf("non-positive phases: %+v", res)
	}
	sum := res.IntraReduceSec + res.InterSec + res.IntraBroadcastSec
	if res.TotalSec != sum {
		t.Fatalf("total %v != phase sum %v", res.TotalSec, sum)
	}
	if res.TotalSec >= res.FlatERingSec {
		t.Fatalf("hierarchy %v not under flat E-Ring %v", res.TotalSec, res.FlatERingSec)
	}
}

func TestMultiRackValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	if _, err := MultiRackTime(cfg, 1, 8, 1024); err == nil {
		t.Fatal("1 rack accepted")
	}
	if _, err := MultiRackTime(cfg, 4, 8, 0); err == nil {
		t.Fatal("zero bytes accepted")
	}
}

func TestVerifyMultiRack(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := VerifyMultiRack(cfg, 3, 12, 29); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMultiRack(cfg, 1, 12, 29); err == nil {
		t.Fatal("1 rack accepted")
	}
}
