package wrht

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFaultPlanZeroBitIdentical is the public zero-fault guarantee: passing
// an explicitly zero FaultPlan to SimulateFabric leaves every priced number
// — per-job stats, aggregates, event traces — bit-identical to the
// plan-free call, for every policy, and the exported Perfetto trace bytes
// are identical too.
func TestFaultPlanZeroBitIdentical(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := fabricTestJobs()
	for _, pol := range FabricPolicies() {
		want, err1 := SimulateFabric(cfg, jobs, pol)
		got, err2 := SimulateFabric(cfg, jobs, pol, FaultPlan{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", pol.Kind, err1, err2)
		}
		if err1 == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: zero FaultPlan perturbs the result\nwant %+v\n got %+v", pol.Kind, want, got)
		}
	}

	trace := func(withPlan bool) []byte {
		ss := NewSweepSession()
		ob := ss.Observe()
		var err error
		if withPlan {
			_, err = ss.SimulateFabric(cfg, jobs, FabricPolicy{Kind: FabricElastic}, FaultPlan{})
		} else {
			_, err = ss.SimulateFabric(cfg, jobs, FabricPolicy{Kind: FabricElastic})
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ob.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(trace(false), trace(true)) {
		t.Fatal("zero FaultPlan changes the exported trace bytes")
	}
}

// TestSimulateFabricFaultyPublic drives scripted faults through the public
// API: events surface in the trace, fault counters and Availability are
// populated, and the faulty run is deterministic.
func TestSimulateFabricFaultyPublic(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := fabricTestJobs()
	plan := FaultPlan{Scripted: []FaultEvent{
		{TimeSec: 1e-4, Kind: FaultWavelengthDown, Count: 4},
		{TimeSec: 2e-3, Kind: FaultWavelengthUp, Count: 4},
		{TimeSec: 5e-4, Kind: FaultJob},
	}}
	run := func() FabricResult {
		res, err := SimulateFabric(cfg, jobs, FabricPolicy{Kind: FabricElastic, ReconfigDelaySec: 1e-6}, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.JobFaults != 1 {
		t.Fatalf("job faults %d, want 1", res.JobFaults)
	}
	if res.LostWorkSec <= 0 {
		t.Fatalf("job fault lost no work: %+v", res)
	}
	if !(res.Availability > 0 && res.Availability < 1) {
		t.Fatalf("availability %v, want in (0,1) with darkened wavelengths", res.Availability)
	}
	var kinds []string
	for _, ev := range res.Events {
		kinds = append(kinds, ev.Kind)
	}
	all := strings.Join(kinds, ",")
	for _, want := range []string{FaultWavelengthDown, FaultWavelengthUp, "job-fault"} {
		if !strings.Contains(all, want) {
			t.Fatalf("trace missing %q events (kinds: %s)", want, all)
		}
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Fatal("faulty fabric run is not deterministic")
	}
}

// TestFaultPlanValidation pins the public error surface.
func TestFaultPlanValidation(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := fabricTestJobs()
	pol := FabricPolicy{Kind: FabricElastic}

	if _, err := SimulateFabric(cfg, jobs, pol, FaultPlan{}, FaultPlan{}); err == nil ||
		!strings.Contains(err.Error(), "at most one FaultPlan") {
		t.Fatalf("two plans accepted: %v", err)
	}
	bad := FaultPlan{Scripted: []FaultEvent{{TimeSec: 1, Kind: "meteor-strike"}}}
	if _, err := SimulateFabric(cfg, jobs, pol, bad); err == nil ||
		!strings.Contains(err.Error(), "unknown fault event kind") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
	outage := FaultPlan{Scripted: []FaultEvent{{TimeSec: 1e-3, Kind: FaultFabricDown}}}
	if _, err := SimulateFabric(cfg, jobs, pol, outage); err == nil ||
		!strings.Contains(err.Error(), "fleet") {
		t.Fatalf("single-fabric outage accepted: %v", err)
	}
	dark := FaultPlan{Scripted: []FaultEvent{{TimeSec: 1e-3, Kind: FaultWavelengthDown}}}
	if _, err := SimulateFabric(cfg, jobs, FabricPolicy{Kind: FabricStatic}, dark); err == nil {
		t.Fatal("wavelength fault accepted under static partitioning")
	}
	if _, err := SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), fleetTestTrace(t, 10),
		FleetOptions{Recovery: "abandon-ship"}); err == nil ||
		!strings.Contains(err.Error(), "unknown recovery policy") {
		t.Fatalf("unknown recovery accepted: %v", err)
	}
}

// TestSimulateFleetFaultyPublic: scripted fabric outages through the public
// fleet API populate recovery aggregates deterministically, and migration
// beats fail-fast on completed work for the same plan.
func TestSimulateFleetFaultyPublic(t *testing.T) {
	cfg := fabricTestConfig()
	jobs := fleetTestTrace(t, 40)
	plan := FaultPlan{Scripted: []FaultEvent{
		{TimeSec: 5e-3, Kind: FaultFabricDown, Fabric: 0},
		{TimeSec: 2e-2, Kind: FaultFabricUp, Fabric: 0},
	}}
	run := func(recovery string) FleetResult {
		res, err := SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), jobs,
			FleetOptions{Faults: plan, Recovery: recovery})
		if err != nil {
			t.Fatalf("%s: %v", recovery, err)
		}
		return res
	}
	mig := run(RecoveryMigrateOnFailure)
	if mig.Outages != 1 {
		t.Fatalf("outages %d, want 1", mig.Outages)
	}
	if mig.Evictions == 0 || mig.Retries == 0 {
		t.Fatalf("outage evicted nothing: %+v", mig)
	}
	if !(mig.Availability > 0 && mig.Availability < 1) {
		t.Fatalf("availability %v, want in (0,1)", mig.Availability)
	}
	ff := run(RecoveryFailFast)
	if ff.Killed == 0 {
		t.Fatalf("fail-fast killed nothing: %+v", ff)
	}
	if mig.Completed < ff.Completed {
		t.Fatalf("migration completed %d < fail-fast %d", mig.Completed, ff.Completed)
	}
	if again := run(RecoveryMigrateOnFailure); !reflect.DeepEqual(mig, again) {
		t.Fatal("faulty fleet run is not deterministic")
	}
}
