package wrht

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"wrht/internal/energy"
	"wrht/internal/opticalsim"
)

// EnergyReport estimates the energy of one all-reduce (joules).
type EnergyReport struct {
	Algorithm Algorithm
	// DynamicJ is per-bit conversion/traversal energy.
	DynamicJ float64
	// TuningJ is micro-ring retuning energy (optical only).
	TuningJ float64
	// StaticJ is laser / idle power integrated over the operation.
	StaticJ float64
	// TotalJ is the sum.
	TotalJ float64
	// Seconds is the simulated duration the static term integrates over.
	Seconds float64
}

// EnergyEstimate prices one all-reduce in joules using representative
// silicon-photonics and 100GbE energy constants (internal/energy), on top of
// the same simulated schedules CommunicationTime uses. It quantifies the
// paper's "low power cost" motivation.
func EnergyEstimate(cfg Config, alg Algorithm, bytes int64) (EnergyReport, error) {
	// One communicationTime call yields both the simulated duration and the
	// schedule it was simulated from, so the schedule is built exactly once.
	res, s, err := communicationTime(cfg, alg, bytes, nil)
	if err != nil {
		return EnergyReport{}, err
	}
	defer s.Release() // session-free: the transient schedule is ours to recycle
	var b energy.Breakdown
	if isElectrical(alg) {
		b, err = energy.Electrical(s, res.Seconds, energy.DefaultElectricalCosts(), cfg.BytesPerElem)
	} else {
		b, err = energy.Optical(s, res.Seconds, energy.DefaultOpticalCosts(), cfg.BytesPerElem)
	}
	if err != nil {
		return EnergyReport{}, err
	}
	return EnergyReport{
		Algorithm: alg,
		DynamicJ:  b.DynamicJ,
		TuningJ:   b.TuningJ,
		StaticJ:   b.StaticJ,
		TotalJ:    b.TotalJ(),
		Seconds:   res.Seconds,
	}, nil
}

// EventLevelTime runs the message-level discrete-event simulator on an
// optical algorithm's schedule, in barrier (the paper's model) or async
// (node-local dependency) mode, and returns the end-to-end time. Barrier
// mode matches CommunicationTime; async bounds what a runtime could gain by
// dropping global step barriers.
func EventLevelTime(cfg Config, alg Algorithm, bytes int64, async bool) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if isElectrical(alg) {
		return Result{}, fmt.Errorf("wrht: EventLevelTime supports optical algorithms only, got %q", alg)
	}
	if bytes <= 0 {
		return Result{}, fmt.Errorf("wrht: non-positive buffer size %d", bytes)
	}
	elems := int((bytes + int64(cfg.BytesPerElem) - 1) / int64(cfg.BytesPerElem))
	cs, _, err := buildCompactSchedule(cfg, alg, elems)
	if err != nil {
		return Result{}, err
	}
	defer cs.Release()
	opts := opticalsim.DefaultOptions()
	opts.Params = cfg.Optical
	opts.BytesPerElem = cfg.BytesPerElem
	if alg == AlgORingStriped {
		opts.DefaultWidth = cfg.Optical.Wavelengths
	}
	if async {
		opts.Mode = opticalsim.Async
	}
	r, err := opticalsim.RunCompact(cs, opts)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Algorithm: alg,
		Substrate: fmt.Sprintf("optical-ring(w=%d,%s)", cfg.Optical.Wavelengths, r.Mode),
		Seconds:   r.TotalSec,
		Steps:     cs.NumSteps(),
	}, nil
}

// SaveConfig writes the configuration as indented JSON.
func SaveConfig(cfg Config, path string) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads a configuration written by SaveConfig and validates it.
// Unknown fields are rejected to catch typos in hand-edited files.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("wrht: parsing %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("wrht: %s: %w", path, err)
	}
	return cfg, nil
}
